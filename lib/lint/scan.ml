(* Per-file syntactic rules over the compiler-libs parsetree.

   The pass is deliberately untyped: it runs on a bare [Parse.implementation]
   with no type environment, so every rule is a syntactic approximation with
   the committed baseline absorbing the benign remainder (e.g. a
   [Hashtbl.fold] that computes a commutative sum).  What the approximation
   buys is speed (the whole tree lints in well under a second) and zero
   coupling to build order. *)

open Parsetree

type ctx = {
  file : string;  (* root-relative path *)
  own_dir : string option;  (* lib/<dir>/ files get layer restrictions *)
  findings : Finding.t list ref;
  context : string list ref;  (* enclosing binding names, innermost first *)
  sort_depth : int ref;  (* > 0 inside an argument of a sort application *)
  aliases : (string, string list) Hashtbl.t;
      (* [module U = Unix] renames, resolved before every longident check *)
}

let last2 comps =
  match List.rev comps with
  | last :: prev :: _ -> (prev, last)
  | [ last ] -> ("", last)
  | [] -> ("", "")

let is_sort (m, f) =
  (match m with "List" | "ListLabels" | "Array" | "ArrayLabels" -> true | _ -> false)
  && match f with "sort" | "stable_sort" | "fast_sort" | "sort_uniq" -> true | _ -> false

(* Hash-table-shaped containers whose iteration order is seed-dependent.
   [Store] is the stable store (hashtable-backed; use [Store.to_alist] for a
   deterministic order) and [Pair_tbl] is Acl's Hashtbl.Make instance. *)
let is_unordered (m, f) =
  (match m with "Hashtbl" | "MoreLabels" | "Store" | "Pair_tbl" -> true | _ -> false)
  && match f with "fold" | "iter" | "to_seq" | "to_seq_keys" | "to_seq_values" -> true | _ -> false

(* Domain-level concurrency primitives.  The sharded runtime's determinism
   argument rests on single-writer shards whose only synchronization is the
   epoch-barrier exchange inside lib/sim/exec.ml; any other use of these
   modules creates cross-domain state the argument cannot see. *)
let domain_primitive_modules = [ "Domain"; "Atomic"; "Mutex"; "Condition" ]

let shard_runtime_file = "lib/sim/exec.ml"

(* The disk-fault injector couples a fault spec to its own RNG stream;
   guardian code may carry a [Disk.spec] around freely, but only the stable
   layer may turn one into a live injector handle — anyone else drawing
   faults would perturb RNG streams and bypass the store's salvage and
   quarantine accounting. *)
let disk_injector_dir = "lib/stable/"

let in_stable_layer file =
  String.length file >= String.length disk_injector_dir
  && String.equal (String.sub file 0 (String.length disk_injector_dir)) disk_injector_dir

let wall_clock_idents =
  [
    ("Unix", "gettimeofday");
    ("Unix", "time");
    ("Unix", "gmtime");
    ("Unix", "localtime");
    ("Sys", "time");
    ("Random", "self_init");
  ]

let is_send (m, f) =
  String.equal f "send" || String.equal f "reply" || (String.equal m "Rpc" && String.equal f "call")

let is_compare_op (_, f) =
  match f with "=" | "<>" | "<" | ">" | "<=" | ">=" -> true | _ -> false

let pos_of loc =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let report ctx ~loc ~rule ~token message =
  let line, col = pos_of loc in
  let context =
    match !(ctx.context) with [] -> "-" | names -> String.concat "." (List.rev names)
  in
  ctx.findings := Finding.v ~rule ~file:ctx.file ~line ~col ~context ~token message :: !(ctx.findings)

let with_context ctx name f =
  ctx.context := name :: !(ctx.context);
  Fun.protect ~finally:(fun () -> ctx.context := List.tl !(ctx.context)) f

(* ---- longident checks ---- *)

(* Rewrite the head of a path through the file's module aliases, so
   [module U = Unix ... U.time] is checked as [Unix.time].  Scoping is
   coarse (one table per file, no shadowing) — fine for the lint tier,
   where a false resolution just means a baselined finding. *)
let resolve_alias ctx comps =
  let rec go comps depth =
    match comps with
    | head :: rest when depth < 5 -> (
        match Hashtbl.find_opt ctx.aliases head with
        | Some target -> go (target @ rest) (depth + 1)
        | None -> comps)
    | _ -> comps
  in
  go comps 0

let check_lid ctx (lid : Longident.t Location.loc) =
  let comps = resolve_alias ctx (Longident.flatten lid.txt) in
  let loc = lid.loc in
  let pair = last2 comps in
  (match comps with
  | head :: _ when String.length head > 4 && String.equal (String.sub head 0 4) "Dcp_" -> (
      match (ctx.own_dir, Layers.dir_of_lib_name (String.lowercase_ascii head)) with
      | Some own, Some ref_dir when not (String.equal own ref_dir) -> (
          match (Layers.rank_of_dir own, Layers.rank_of_dir ref_dir) with
          | Some own_rank, Some ref_rank when ref_rank >= own_rank ->
              if Layers.is_guardian own && Layers.is_guardian ref_dir then
                report ctx ~loc ~rule:"guardian-isolation" ~token:head
                  (Printf.sprintf
                     "guardian %s may not name guardian module %s directly; go through \
                      Port/Message/Rpc"
                     own head)
              else
                report ctx ~loc ~rule:"layer-dag" ~token:head
                  (Printf.sprintf "layer back-edge: lib/%s (layer %d) references %s (layer %d)"
                     own own_rank head ref_rank)
          | Some _, Some _ -> ()
          | _, None ->
              report ctx ~loc ~rule:"layer-dag" ~token:head
                (Printf.sprintf "reference to %s, which has no layer" head)
          | None, _ -> ())
      | _ -> ())
  | _ -> ());
  (* module position only: a plain constructor named [Obj] is not the
     unsafe module *)
  if List.exists (String.equal "Obj") (match List.rev comps with [] -> [] | _ :: prefix -> prefix)
  then
    report ctx ~loc ~rule:"obj-magic" ~token:(String.concat "." comps)
      (Printf.sprintf "%s defeats the type system and the wire discipline" (String.concat "." comps));
  (if not (String.equal ctx.file shard_runtime_file) then
     (* module position only (there must be a component after it), with an
        optional [Stdlib.] prefix *)
     let in_module_position =
       match comps with
       | "Stdlib" :: head :: _ :: _ | head :: _ :: _ -> List.mem head domain_primitive_modules
       | _ -> false
     in
     if in_module_position then
       report ctx ~loc ~rule:"domain-primitives" ~token:(String.concat "." comps)
         (Printf.sprintf
            "%s is a domain-level concurrency primitive; only the shard runtime \
             (lib/sim/exec.ml) may synchronize domains — shard state is single-writer \
             and crosses boundaries only at epoch barriers"
            (String.concat "." comps)));
  (match pair with
  | "Disk", "create" when not (in_stable_layer ctx.file) ->
      report ctx ~loc ~rule:"disk-faults" ~token:(String.concat "." comps)
        "only lib/stable may construct a disk-fault injector handle; pass the Disk.spec \
         to Store.create and let the store build its own injector"
  | _ -> ());
  if List.mem pair wall_clock_idents then
    report ctx ~loc ~rule:"wall-clock" ~token:(String.concat "." comps)
      (Printf.sprintf
         "%s is wall-clock/nondeterministic state; use the simulated Clock or Dcp_rng"
         (String.concat "." comps));
  match comps with
  | [ "compare" ] | [ "Stdlib"; "compare" ] ->
      report ctx ~loc ~rule:"poly-compare" ~token:"compare"
        "polymorphic compare; use a typed comparison (String.compare, Int.compare, a \
         per-module compare)"
  | [ "Hashtbl"; "hash" ] | [ "Stdlib"; "Hashtbl"; "hash" ] ->
      report ctx ~loc ~rule:"poly-compare" ~token:"Hashtbl.hash"
        "polymorphic hash; write a typed hash for the key type"
  | _ -> ()

(* ---- expression helpers ---- *)

let rec callee_lid e =
  match e.pexp_desc with
  | Pexp_ident lid -> Some lid
  | Pexp_apply (f, _) -> callee_lid f
  | _ -> None

let callee_pair e =
  match callee_lid e with Some lid -> Some (last2 (Longident.flatten lid.txt)) | None -> None

let expr_contains pred e =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let expr self e =
    if pred e then found := true;
    if not !found then super.expr self e
  in
  let it = { super with expr } in
  it.expr it e;
  !found

(* A comparison operand that is (or contains) a whole [Port.name] result.
   Projections out of the abstract name ([(Port.name p).Port_name.index])
   compare a concrete component and are fine, so field accesses are not
   descended into. *)
let mentions_port_name e =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let expr self e =
    match e.pexp_desc with
    | Pexp_field _ -> ()
    | Pexp_ident { txt; _ } -> (
        match last2 (Longident.flatten txt) with "Port", "name" -> found := true | _ -> ())
    | _ -> if not !found then super.expr self e
  in
  let it = { super with expr } in
  it.expr it e;
  !found

(* A raw mutable value syntactically reaching a transmission argument:
   anything whose identity the receiver cannot share.  Everything sent must
   go through Value/Codec external reps. *)
let mutable_payload e =
  let verdict = ref None in
  let note token = if !verdict = None then verdict := Some token in
  ignore
    (expr_contains
       (fun e ->
         (match e.pexp_desc with
         | Pexp_array _ -> note "array-literal"
         | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident "ref"; _ }; _ }, _) ->
             note "ref"
         | Pexp_ident { txt; _ } -> (
             match last2 (Longident.flatten txt) with
             | "Bytes", ("create" | "make" | "of_string" | "copy" | "unsafe_of_string") ->
                 note "Bytes"
             | _ -> ())
         | _ -> ());
         false)
       e);
  !verdict

(* ---- the iterator ---- *)

let binding_name pat =
  let rec go p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (inner, _) -> go inner
    | _ -> None
  in
  go pat

let iterator ctx =
  let super = Ast_iterator.default_iterator in
  let visit_args self args = List.iter (fun (_, a) -> self.Ast_iterator.expr self a) args in
  let rec handle_apply self f args loc =
    let pair = callee_pair f in
    match (pair, args) with
    | Some (_, "|>"), [ (_, lhs); (_, rhs) ] when Option.fold ~none:false ~some:is_sort (callee_pair rhs)
      ->
        self.Ast_iterator.expr self rhs;
        incr ctx.sort_depth;
        Fun.protect
          ~finally:(fun () -> decr ctx.sort_depth)
          (fun () -> self.Ast_iterator.expr self lhs)
    | Some (_, "@@"), [ (_, lhs); (_, rhs) ] when Option.fold ~none:false ~some:is_sort (callee_pair lhs)
      ->
        self.Ast_iterator.expr self lhs;
        incr ctx.sort_depth;
        Fun.protect
          ~finally:(fun () -> decr ctx.sort_depth)
          (fun () -> self.Ast_iterator.expr self rhs)
    | Some p, _ when is_sort p ->
        self.Ast_iterator.expr self f;
        incr ctx.sort_depth;
        Fun.protect ~finally:(fun () -> decr ctx.sort_depth) (fun () -> visit_args self args)
    | Some p, _ ->
        let token = String.concat "." [ fst p; snd p ] in
        if is_unordered p && !(ctx.sort_depth) = 0 then
          report ctx ~loc ~rule:"hashtbl-order" ~token
            (Printf.sprintf
               "%s iterates in hash order; sort the collected result (or use Store.to_alist) \
                before it can reach wire encoding, oracle verdicts, or trace output"
               token);
        if is_send p then
          List.iter
            (fun (_, a) ->
              match mutable_payload a with
              | Some mtoken ->
                  report ctx ~loc:a.pexp_loc ~rule:"mutable-payload" ~token:mtoken
                    (Printf.sprintf
                       "raw mutable value (%s) in a %s argument; transmit an external rep \
                        built with Value/Codec instead"
                       mtoken token)
              | None -> ())
            args;
        if is_compare_op p && List.exists (fun (_, a) -> mentions_port_name a) args then
          report ctx ~loc ~rule:"poly-compare" ~token:"Port.name"
            (Printf.sprintf "polymorphic %s on port names; use Port_name.equal/compare" (snd p));
        self.Ast_iterator.expr self f;
        visit_args self args
    | None, _ -> (
        (* the callee is itself an expression (e.g. a pipe chain target) *)
        match f.pexp_desc with
        | Pexp_apply (inner_f, inner_args) ->
            handle_apply self inner_f inner_args f.pexp_loc;
            visit_args self args
        | _ ->
            self.Ast_iterator.expr self f;
            visit_args self args)
  in
  let register_alias name mexpr =
    match mexpr.pmod_desc with
    | Pmod_ident lid -> Hashtbl.replace ctx.aliases name (Longident.flatten lid.txt)
    | _ -> ()
  in
  let expr self e =
    match e.pexp_desc with
    | Pexp_ident lid -> check_lid ctx lid
    | Pexp_apply (f, args) -> handle_apply self f args e.pexp_loc
    | Pexp_letmodule ({ txt = Some name; _ }, mexpr, _) ->
        register_alias name mexpr;
        super.expr self e
    | Pexp_construct (lid, _) | Pexp_field (_, lid) | Pexp_setfield (_, lid, _) | Pexp_new lid ->
        check_lid ctx lid;
        super.expr self e
    | Pexp_record (fields, _) ->
        List.iter (fun (lid, _) -> check_lid ctx lid) fields;
        super.expr self e
    | _ -> super.expr self e
  in
  let typ self t =
    (match t.ptyp_desc with
    | Ptyp_constr (lid, _) | Ptyp_class (lid, _) -> check_lid ctx lid
    | _ -> ());
    super.typ self t
  in
  let pat self p =
    (match p.ppat_desc with
    | Ppat_construct (lid, _) | Ppat_type lid -> check_lid ctx lid
    | Ppat_record (fields, _) -> List.iter (fun (lid, _) -> check_lid ctx lid) fields
    | _ -> ());
    super.pat self p
  in
  let module_expr self m =
    (match m.pmod_desc with Pmod_ident lid -> check_lid ctx lid | _ -> ());
    super.module_expr self m
  in
  let structure_item self item =
    match item.pstr_desc with
    | Pstr_value (_, bindings) ->
        List.iter
          (fun vb ->
            match binding_name vb.pvb_pat with
            | Some name -> with_context ctx name (fun () -> self.Ast_iterator.value_binding self vb)
            | None -> self.Ast_iterator.value_binding self vb)
          bindings
    | Pstr_module ({ pmb_name = { txt = Some name; _ }; _ } as mb) ->
        register_alias name mb.pmb_expr;
        with_context ctx name (fun () -> super.structure_item self item)
    | _ -> super.structure_item self item
  in
  { super with expr; typ; pat; module_expr; structure_item }

let file ~path ~source =
  let own_dir =
    match String.split_on_char '/' path with
    | [ "lib"; dir; _ ] -> Some dir
    | _ -> None
  in
  let ctx =
    {
      file = path;
      own_dir;
      findings = ref [];
      context = ref [];
      sort_depth = ref 0;
      aliases = Hashtbl.create 8;
    }
  in
  (try
     let lexbuf = Lexing.from_string source in
     Location.init lexbuf path;
     let structure = Parse.implementation lexbuf in
     let it = iterator ctx in
     it.structure it structure
   with exn ->
     let message =
       match exn with
       | Syntaxerr.Error _ -> "syntax error"
       | exn -> Printexc.to_string exn
     in
     report ctx ~loc:Location.none ~rule:"parse-error" ~token:"parse"
       (Printf.sprintf "could not parse: %s" message));
  List.sort Finding.order !(ctx.findings)
