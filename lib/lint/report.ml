(* The machine-readable lint report (`dcp.lint.report/v1`), following the
   bench/check emitters: a self-contained JSON value with its own renderer
   and a parser covering exactly the subset we emit, so the schema
   round-trips without external dependencies. *)

let schema = "dcp.lint.report/v1"

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(* ---- rendering ---- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_num f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let render v =
  let b = Buffer.create 4096 in
  let rec go indent v =
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Num f -> Buffer.add_string b (render_num f)
    | Str s -> Buffer.add_string b (Printf.sprintf "\"%s\"" (escape s))
    | Arr [] -> Buffer.add_string b "[]"
    | Arr items ->
        let pad = String.make (indent + 2) ' ' in
        Buffer.add_string b "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string b ",\n";
            Buffer.add_string b pad;
            go (indent + 2) item)
          items;
        Buffer.add_string b (Printf.sprintf "\n%s]" (String.make indent ' '))
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        let pad = String.make (indent + 2) ' ' in
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_string b ",\n";
            Buffer.add_string b (Printf.sprintf "%s\"%s\": " pad (escape k));
            go (indent + 2) item)
          fields;
        Buffer.add_string b (Printf.sprintf "\n%s}" (String.make indent ' '))
  in
  go 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

(* ---- parsing (the emitted subset) ---- *)

exception Parse_error of string

let parse (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.equal (String.sub s !pos (String.length word)) word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail "unknown literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= len then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        if !pos >= len then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
            if !pos + 4 > len then fail "truncated \\u escape";
            let code = int_of_string ("0x" ^ String.sub s !pos 4) in
            pos := !pos + 4;
            Buffer.add_char b (if code < 128 then Char.chr code else '?')
        | _ -> fail "unknown escape");
        loop ()
      end
      else begin
        Buffer.add_char b c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing bytes";
  v

let member name = function Obj fields -> List.assoc_opt name fields | _ -> None

(* ---- building the report ---- *)

let of_finding (f : Finding.t) =
  Obj
    [
      ("rule", Str f.rule);
      ("file", Str f.file);
      ("line", Num (float_of_int f.line));
      ("col", Num (float_of_int f.col));
      ("context", Str f.context);
      ("token", Str f.token);
      ("message", Str f.message);
      ("key", Str (Finding.key f));
      ("baselined", Bool f.baselined);
    ]

let of_layer (l : Layers.lib) =
  Obj
    [
      ("lib", Str l.dir);
      ("name", Str l.lib_name);
      ("rank", Num (float_of_int l.rank));
      ("deps", Arr (List.map (fun d -> Str d) l.deps));
    ]

let build ~root ~files_scanned ~layers ~findings ~stale_baseline =
  let active = List.filter (fun f -> not f.Finding.baselined) findings in
  let by_rule =
    List.map
      (fun (rule, family) ->
        let count p = List.length (List.filter p findings) in
        ( rule,
          Obj
            [
              ("family", Str (Finding.family_name family));
              ("total", Num (float_of_int (count (fun f -> String.equal f.Finding.rule rule))));
              ( "active",
                Num
                  (float_of_int
                     (count (fun f ->
                          String.equal f.Finding.rule rule && not f.Finding.baselined))) );
            ] ))
      Finding.rules
  in
  let sorted_layers =
    List.sort
      (fun (a : Layers.lib) b ->
        let c = Int.compare a.rank b.rank in
        if c <> 0 then c else String.compare a.dir b.dir)
      layers
  in
  Obj
    [
      ("schema", Str schema);
      ("root", Str root);
      ("files_scanned", Num (float_of_int files_scanned));
      ("layers", Arr (List.map of_layer sorted_layers));
      ("findings", Arr (List.map of_finding findings));
      ("stale_baseline", Arr (List.map (fun k -> Str k) stale_baseline));
      ( "summary",
        Obj
          [
            ("total", Num (float_of_int (List.length findings)));
            ("active", Num (float_of_int (List.length active)));
            ("baselined", Num (float_of_int (List.length findings - List.length active)));
            ("stale_baseline", Num (float_of_int (List.length stale_baseline)));
            ("rules", Obj by_rule);
          ] );
    ]
