type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  context : string;
  token : string;
  message : string;
  mutable baselined : bool;
}

let v ~rule ~file ~line ~col ~context ~token message =
  { rule; file; line; col; context; token; message; baselined = false }

(* The baseline key deliberately omits line/column so grandfathered findings
   survive unrelated edits to the same file; a new offending call in a
   different binding (or a different callee in the same binding) still gets a
   fresh key. *)
let key f = Printf.sprintf "%s %s %s/%s" f.rule f.file f.context f.token

let order a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let pp ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

let to_string f = Format.asprintf "%a" pp f

type family = Isolation | Transmittability | Determinism | Hygiene | Protocol

let family_name = function
  | Isolation -> "isolation"
  | Transmittability -> "transmittability"
  | Determinism -> "determinism"
  | Hygiene -> "hygiene"
  | Protocol -> "protocol"

(* Every rule either pass can emit, with its family: the reports list them so
   downstream tooling need not hardcode the set. *)
let rules =
  [
    ("layer-dag", Isolation);
    ("guardian-isolation", Isolation);
    ("mutable-payload", Transmittability);
    ("wall-clock", Determinism);
    ("hashtbl-order", Determinism);
    ("domain-primitives", Determinism);
    ("disk-faults", Determinism);
    ("poly-compare", Hygiene);
    ("obj-magic", Hygiene);
    ("mli-missing", Hygiene);
    ("parse-error", Hygiene);
    ("proto-dead-letter", Protocol);
    ("proto-unreachable-handler", Protocol);
    ("proto-reply-obligation", Protocol);
    ("proto-escape", Transmittability);
  ]

(* One paragraph per rule, printed by [dcp_lint --explain <rule>]. *)
let explanations =
  [
    ( "layer-dag",
      "Modules may only depend downward in the layer DAG declared by lib/*/dune \
       (core < net < stable < sim < primitives < applications).  An upward or \
       sideways reference couples layers the architecture keeps separate and \
       usually means simulation state is leaking into a guardian." );
    ( "guardian-isolation",
      "Guardians share nothing: a guardian module must not reach into another \
       guardian's state directly.  All cross-guardian interaction goes through \
       messages (Runtime.send / Rpc.call), which is what makes node crashes and \
       network faults injectable." );
    ( "mutable-payload",
      "A send/reply argument contains a raw mutable value (ref, array, Bytes) in \
       the same expression.  Messages must carry external representations built \
       with Value/Codec; sharing a mutable value across guardians breaks the \
       no-shared-memory model and makes runs schedule-dependent." );
    ( "wall-clock",
      "Unix.time, Unix.gettimeofday and friends read the host clock, which makes \
       simulated runs irreproducible.  Use the simulated Clock (world time) or \
       Dcp_rng for randomness; the rule resolves module aliases (module U = \
       Unix), so hiding the access behind a rename does not help." );
    ( "hashtbl-order",
      "Hashtbl.fold/iter enumerate in bucket order, which depends on insertion \
       history and the hash seed, so any value derived from it is \
       nondeterministic.  Fold into a list and sort, or use Store.to_alist / a \
       Map, before the result can influence messages or metrics." );
    ( "domain-primitives",
      "Domain, Atomic and Mutex are only allowed in lib/sim/exec.ml, the one \
       module that implements the sharded engine's barrier.  Anywhere else they \
       introduce real parallelism the deterministic scheduler cannot replay." );
    ( "disk-faults",
      "Disk fault-injection handles are constructible only inside lib/stable; \
       other layers must take a Disk.t as configuration.  Constructing injectors \
       elsewhere would let tests bypass the stable-storage write-ahead \
       discipline." );
    ( "poly-compare",
      "Polymorphic compare/hash walks arbitrary structure: it is slow, breaks on \
       functional values, and orders abstract types by representation.  Use the \
       typed comparison for the key type (String.compare, Int.compare, \
       Port_name.equal, a per-module compare)." );
    ( "obj-magic",
      "Obj.magic defeats the type system; there is no sanctioned use in this \
       codebase." );
    ( "mli-missing",
      "Every library module carries an interface file; an .ml without an .mli \
       exports its whole namespace and tends to grow accidental dependents." );
    ( "parse-error",
      "The file failed to parse with the compiler-libs parser, so no other rule \
       could run on it.  Usually a syntax error or an unsupported extension \
       point." );
    ( "proto-dead-letter",
      "A send site transmits a statically-known message name that no guardian in \
       the whole program handles or declares: the message can only ever be \
       dropped by the receiver's dispatch fall-through.  Either the name is \
       misspelled, the handler was removed, or the send is dead code.  Names the \
       analysis cannot resolve to literals are recorded as dynamic, never \
       reported." );
    ( "proto-unreachable-handler",
      "A guardian dispatches on (or declares) a message name that no send site \
       in the whole program produces, so the handler arm is unreachable from \
       inside the repo.  Warning tier: externally-driven protocols and \
       test-only senders legitimately trip it, which is what the proto baseline \
       is for." );
    ( "proto-reply-obligation",
      "An RPC handler's message carries a reply port, but on at least one \
       syntactic control-flow path the handler neither replies nor explicitly \
       discards the port (matching it against None is the sanctioned discard).  \
       The caller of Rpc.call will wait out its timeout for every request that \
       takes this path — the classic two_phase/replica gap this analyzer was \
       built to catch." );
    ( "proto-escape",
      "Interprocedural version of mutable-payload: a helper function returns (or \
       passes through) a ref/array/Bytes value and the result flows into a \
       send/reply payload through one or more calls.  The per-file rule only \
       sees literal constructors in the argument expression; this one uses \
       function summaries, so laundering the allocation through a helper no \
       longer hides it." );
  ]

let explain rule = List.assoc_opt rule explanations
