type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  context : string;
  token : string;
  message : string;
  mutable baselined : bool;
}

let v ~rule ~file ~line ~col ~context ~token message =
  { rule; file; line; col; context; token; message; baselined = false }

(* The baseline key deliberately omits line/column so grandfathered findings
   survive unrelated edits to the same file; a new offending call in a
   different binding (or a different callee in the same binding) still gets a
   fresh key. *)
let key f = Printf.sprintf "%s %s %s/%s" f.rule f.file f.context f.token

let order a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let pp ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

let to_string f = Format.asprintf "%a" pp f

type family = Isolation | Transmittability | Determinism | Hygiene

let family_name = function
  | Isolation -> "isolation"
  | Transmittability -> "transmittability"
  | Determinism -> "determinism"
  | Hygiene -> "hygiene"

(* Every rule the pass can emit, with its family: the report lists them so
   downstream tooling need not hardcode the set. *)
let rules =
  [
    ("layer-dag", Isolation);
    ("guardian-isolation", Isolation);
    ("mutable-payload", Transmittability);
    ("wall-clock", Determinism);
    ("hashtbl-order", Determinism);
    ("domain-primitives", Determinism);
    ("poly-compare", Hygiene);
    ("obj-magic", Hygiene);
    ("mli-missing", Hygiene);
    ("parse-error", Hygiene);
  ]
