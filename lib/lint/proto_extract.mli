(** Whole-program protocol analysis, pass 1: per-unit extraction.

    Parses each compilation unit once and extracts the raw protocol facts —
    function definitions, declared message signatures, and handler dispatch
    sites — consumed by the interprocedural passes ([Proto_summary],
    [Proto_reply], [Proto_flow]).  Untyped and syntactic, like [Scan]. *)

module SSet : Set.S with type elt = string
module SMap : Map.S with type key = string

(** The abstract string-set lattice command names are evaluated in. *)
type names = Known of SSet.t | Dynamic

val known : string list -> names
val nunion : names -> names -> names
val nmem : string -> names -> bool

(** {1 Syntax helpers shared by the later passes} *)

val last2 : string list -> string * string
val lid_last : Longident.t -> string
val callee_lid : Parsetree.expression -> Longident.t option
val callee_pair : Parsetree.expression -> (string * string) option
val pair_string : string * string -> string
val line_of : Location.t -> int
val positional : int -> (Asttypes.arg_label * Parsetree.expression) list -> Parsetree.expression option
val labelled : string -> (Asttypes.arg_label * Parsetree.expression) list -> Parsetree.expression option
val strip : Parsetree.pattern -> Parsetree.pattern
val alternatives : Parsetree.pattern -> Parsetree.pattern list
val pat_constants : Parsetree.pattern -> string list
val binding_name : Parsetree.pattern -> string option
val sub_at : Parsetree.pattern -> idx:int -> ncomps:int -> Parsetree.pattern option
val is_command_expr : Parsetree.expression -> bool
val is_reply_source : vars:SSet.t -> Parsetree.expression -> bool

val match_positions :
  ?reply_vars:SSet.t ->
  Parsetree.expression ->
  Parsetree.expression list * int option * int option
(** Scrutinee components plus the command and reply-port positions. *)

(** {1 Function definitions} *)

type param = {
  p_label : string;  (** "" when positional *)
  p_name : string;
  p_pos : int;  (** index among positional params; [-1] for labelled *)
  p_default : Parsetree.expression option;
}

type fn = {
  fn_name : string;
  fn_key : string;  (** ["Module.name"], the global summary key *)
  fn_context : string;  (** enclosing top-level binding *)
  fn_params : param list;
  fn_body : Parsetree.expression;
  fn_line : int;
}

val decompose_fun : Parsetree.expression -> param list * Parsetree.expression

(** {1 Handler / declaration sites} *)

type handle_kind = Dispatch | Declared | Reply_declared | Reply_match

val kind_name : handle_kind -> string

type handle = {
  h_name : string;
  h_kind : handle_kind;
  h_line : int;
  h_context : string;
  h_obligated : bool;  (** declared with a non-empty reply set *)
}

(** {1 The per-unit record} *)

type unit_info = {
  u_path : string;
  u_module : string;  (** capitalized basename, e.g. ["Branch"] *)
  u_lib : string option;  (** ["bank"] for [lib/bank/branch.ml] *)
  u_id : string;  (** graph node id, e.g. ["bank/branch"] *)
  u_structure : Parsetree.structure option;  (** [None] when the unit fails to parse *)
  u_fns : fn list;
  u_handles : handle list;
}

val module_of_path : string -> string
val id_of_path : string -> string
val load : path:string -> source:string -> unit_info
