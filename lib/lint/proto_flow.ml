(* Whole-program protocol analysis, pass 4: the message-flow graph.

   Joins every resolved send site against every handler/declaration site:

   - dead-letter send: a statically-known sent name no unit handles or
     declares anywhere — the receiver's dispatch fall-through is the only
     thing that can happen to it;
   - unreachable handler: a dispatched/declared name no in-repo send site
     produces (warning tier — test-only and externally-driven senders
     legitimately trip it);
   - flow edges: (sender unit) -> (handler unit) labelled with the shared
     message names, exported as graphviz.

   The runtime-generated "failure" reply is always considered both sent
   and handled.  [Dynamic] send sites contribute no names and are never
   reported — they are visible in the report tables instead. *)

open Proto_extract

type edge = { e_src : string; e_dst : string; e_msgs : SSet.t }

type unit_sends = { us_unit : unit_info; us_sends : Proto_summary.send list }

let handled_names units =
  List.fold_left
    (fun acc u -> List.fold_left (fun acc h -> SSet.add h.h_name acc) acc u.u_handles)
    (SSet.singleton "failure") units

let sent_names per_unit =
  List.fold_left
    (fun acc { us_sends; _ } ->
      List.fold_left
        (fun acc sd ->
          match sd.Proto_summary.sd_names with
          | Known s -> SSet.union acc s
          | Dynamic -> acc)
        acc us_sends)
    (SSet.singleton "failure") per_unit

let dead_letters ~handled per_unit =
  List.concat_map
    (fun { us_unit = u; us_sends } ->
      List.concat_map
        (fun sd ->
          match sd.Proto_summary.sd_names with
          | Dynamic -> []
          | Known names ->
              SSet.fold
                (fun name acc ->
                  if SSet.mem name handled then acc
                  else
                    Finding.v ~rule:"proto-dead-letter" ~file:u.u_path
                      ~line:sd.Proto_summary.sd_line ~col:0
                      ~context:sd.Proto_summary.sd_context ~token:name
                      (Printf.sprintf
                         "message %S (sent via %s) has no handler in the whole program; the \
                          receiver can only drop it"
                         name sd.Proto_summary.sd_via)
                    :: acc)
                names []
              |> List.rev)
        us_sends)
    per_unit

(* Only real dispatch arms and request declarations count as handler
   intent; reply-name declarations are produced by handlers, not consumed
   by them, so an unsent reply name is dead code of a different kind and
   stays out of this rule. *)
let unreachable ~sent units =
  List.concat_map
    (fun u ->
      List.filter_map
        (fun h ->
          match h.h_kind with
          | Reply_declared | Reply_match -> None
          | Dispatch | Declared ->
              if SSet.mem h.h_name sent then None
              else
                Some
                  (Finding.v ~rule:"proto-unreachable-handler" ~file:u.u_path ~line:h.h_line
                     ~col:0 ~context:h.h_context ~token:h.h_name
                     (Printf.sprintf
                        "handler for %S (%s) is unreachable: no send site in the program \
                         produces this name"
                        h.h_name (kind_name h.h_kind))))
        u.u_handles)
    units

module PMap = Map.Make (struct
  type t = string * string

  let compare (a1, b1) (a2, b2) =
    let c = String.compare a1 a2 in
    if c <> 0 then c else String.compare b1 b2
end)

let edges units per_unit =
  let handlers =
    List.fold_left
      (fun acc u ->
        List.fold_left
          (fun acc h ->
            let cur = Option.value (SMap.find_opt h.h_name acc) ~default:SSet.empty in
            SMap.add h.h_name (SSet.add u.u_id cur) acc)
          acc u.u_handles)
      SMap.empty units
  in
  let tbl =
    List.fold_left
      (fun acc { us_unit = u; us_sends } ->
        List.fold_left
          (fun acc sd ->
            match sd.Proto_summary.sd_names with
            | Dynamic -> acc
            | Known names ->
                SSet.fold
                  (fun name acc ->
                    match SMap.find_opt name handlers with
                    | None -> acc
                    | Some dsts ->
                        SSet.fold
                          (fun dst acc ->
                            let k = (u.u_id, dst) in
                            let cur = Option.value (PMap.find_opt k acc) ~default:SSet.empty in
                            PMap.add k (SSet.add name cur) acc)
                          dsts acc)
                  names acc)
          acc us_sends)
      PMap.empty per_unit
  in
  PMap.fold
    (fun (src, dst) msgs acc -> { e_src = src; e_dst = dst; e_msgs = msgs } :: acc)
    tbl []
  |> List.rev

let dot edges =
  let b = Buffer.create 1024 in
  Buffer.add_string b "digraph proto_msgflow {\n  rankdir=LR;\n  node [shape=box];\n";
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%s\"];\n" e.e_src e.e_dst
           (String.concat "," (SSet.elements e.e_msgs))))
    edges;
  Buffer.add_string b "}\n";
  Buffer.contents b
