(** Whole-program protocol analysis, pass 3: reply obligations.

    Branch-sensitive must-discharge check: every dispatch arm for a message
    declared with replies must transmit a reply or explicitly discard the
    reply port ([None] match) on all syntactic paths.  Serve-wrapped
    callbacks are exempt — [Rpc.serve] replies with whatever the callback
    returns. *)

val obligated_names : Proto_extract.unit_info list -> Proto_extract.SSet.t
(** Message names declared with a non-empty reply set anywhere in the
    program (the runtime-generated ["failure"] excluded). *)

val check :
  Proto_summary.env ->
  obligated:Proto_extract.SSet.t ->
  Proto_extract.unit_info ->
  Finding.t list
(** [proto-reply-obligation] findings for one unit. *)
