(* The machine-readable proto-tier report (`dcp.lint.proto/v1`).

   Reuses [Report]'s self-contained JSON value so the document round-trips
   through [Report.parse] without external dependencies.  Everything is
   emitted in deterministic order: units as discovered (sorted paths),
   sends by line, handles by line, flow edges by (src, dst), call-graph
   edges grouped per library. *)

open Proto_extract
open Report

let schema = "dcp.lint.proto/v1"

let of_names = function
  | Dynamic -> Str "dynamic"
  | Known s -> Arr (List.map (fun n -> Str n) (SSet.elements s))

let of_send (sd : Proto_summary.send) =
  Obj
    [
      ("line", Num (float_of_int sd.sd_line));
      ("context", Str sd.sd_context);
      ("via", Str sd.sd_via);
      ("names", of_names sd.sd_names);
    ]

let of_handle (h : handle) =
  Obj
    [
      ("name", Str h.h_name);
      ("kind", Str (kind_name h.h_kind));
      ("line", Num (float_of_int h.h_line));
      ("context", Str h.h_context);
      ("obligated", Bool h.h_obligated);
    ]

let of_unit ({ us_unit = u; us_sends } : Proto_flow.unit_sends) =
  Obj
    [
      ("id", Str u.u_id);
      ("path", Str u.u_path);
      ("module", Str u.u_module);
      ("lib", match u.u_lib with Some l -> Str l | None -> Null);
      ("parsed", Bool (Option.is_some u.u_structure));
      ( "sends",
        Arr
          (List.map of_send
             (List.sort
                (fun (a : Proto_summary.send) b -> Int.compare a.sd_line b.sd_line)
                us_sends)) );
      ( "handles",
        Arr
          (List.map of_handle
             (List.sort (fun (a : handle) b -> Int.compare a.h_line b.h_line) u.u_handles)) );
    ]

let of_edge (e : Proto_flow.edge) =
  Obj
    [
      ("src", Str e.e_src);
      ("dst", Str e.e_dst);
      ("msgs", Arr (List.map (fun n -> Str n) (SSet.elements e.e_msgs)));
    ]

(* Call-graph edges arrive sorted by (lib, caller, callee); group them by
   library, the [None] (bin/examples) group last as "-". *)
let of_call_graph edges =
  let lib_name = function Some l -> l | None -> "-" in
  let groups =
    List.fold_left
      (fun acc (lib, caller, callee) ->
        let l = lib_name lib in
        match acc with
        | (l', edges) :: rest when String.equal l l' -> (l', (caller, callee) :: edges) :: rest
        | _ -> (l, [ (caller, callee) ]) :: acc)
      []
      (List.sort
         (fun (l1, a1, b1) (l2, a2, b2) ->
           let c = String.compare (lib_name l1) (lib_name l2) in
           if c <> 0 then c
           else
             let c = String.compare a1 a2 in
             if c <> 0 then c else String.compare b1 b2)
         edges)
  in
  Arr
    (List.rev_map
       (fun (lib, edges) ->
         Obj
           [
             ("lib", Str lib);
             ( "edges",
               Arr
                 (List.rev_map
                    (fun (caller, callee) -> Obj [ ("from", Str caller); ("to", Str callee) ])
                    edges) );
           ])
       groups)

let build ~root ~units ~flow ~call_graph ~findings ~stale_baseline =
  let active = List.filter (fun f -> not f.Finding.baselined) findings in
  let count p = List.length (List.filter p findings) in
  let by_rule =
    List.filter_map
      (fun (rule, family) ->
        if
          not
            (List.exists
               (fun p -> String.equal rule p)
               [
                 "proto-dead-letter";
                 "proto-unreachable-handler";
                 "proto-reply-obligation";
                 "proto-escape";
               ])
        then None
        else
          Some
            ( rule,
              Obj
                [
                  ("family", Str (Finding.family_name family));
                  ( "total",
                    Num (float_of_int (count (fun f -> String.equal f.Finding.rule rule))) );
                  ( "active",
                    Num
                      (float_of_int
                         (count (fun f ->
                              String.equal f.Finding.rule rule && not f.Finding.baselined))) );
                ] ))
      Finding.rules
  in
  Obj
    [
      ("schema", Str schema);
      ("root", Str root);
      ("units_scanned", Num (float_of_int (List.length units)));
      ("units", Arr (List.map of_unit units));
      ("flow", Arr (List.map of_edge flow));
      ("call_graph", of_call_graph call_graph);
      ("findings", Arr (List.map Report.of_finding findings));
      ("stale_baseline", Arr (List.map (fun k -> Str k) stale_baseline));
      ( "summary",
        Obj
          [
            ("total", Num (float_of_int (List.length findings)));
            ("active", Num (float_of_int (List.length active)));
            ("baselined", Num (float_of_int (List.length findings - List.length active)));
            ("stale_baseline", Num (float_of_int (List.length stale_baseline)));
            ("flow_edges", Num (float_of_int (List.length flow)));
            ("rules", Obj by_rule);
          ] );
    ]
