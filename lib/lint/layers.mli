(** The layer DAG and its dune-graph rules.

    Layers are the canonical chain [wire -> net -> stable -> sim -> core ->
    primitives -> apps] from DESIGN.md, refined by the actual dune graph
    (sim sits beside wire because net is built on the simulator's clock).
    Dune dependency edges must point strictly downward; the four guardian
    application libraries share a layer, so any edge between them is a
    back-edge and reported as a guardian-isolation violation. *)

type lib = {
  dir : string;  (** directory short name under [lib/] *)
  lib_name : string;  (** dune library name, e.g. ["dcp_bank"] *)
  deps : string list;  (** raw [(libraries ...)] entries *)
  rank : int;  (** canonical layer, [-1] when unknown *)
}

val ranks : (string * int) list
(** Canonical layer of every known [lib/] directory. *)

val guardians : string list
(** The guardian application libraries: isolated from one another. *)

val is_guardian : string -> bool

val rank_of_dir : string -> int option

val dir_of_lib_name : string -> string option
(** ["dcp_bank"] -> [Some "bank"]; [None] for external library names. *)

val rank_of_module : string -> int option
(** Layer of a toplevel module reference, e.g. ["Dcp_bank"] -> [Some 6].
    [None] for modules that are not in-repo libraries. *)

val load : root:string -> lib list
(** Parse every [lib/<dir>/dune] under [root], sorted by directory. *)

val graph_findings : lib list -> Finding.t list
(** Unknown layers plus non-descending dune edges. *)
