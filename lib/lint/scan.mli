(** Per-file syntactic rules over the compiler-libs parsetree.

    The pass is untyped — it runs on a bare [Parse.implementation] — so each
    rule is a syntactic approximation; the committed baseline absorbs benign
    matches (e.g. a [Hashtbl.fold] computing a commutative sum).  Rules:

    - [layer-dag] / [guardian-isolation]: a [Dcp_*] module reference whose
      layer is not strictly below the referencing library's layer.
    - [wall-clock]: [Unix.gettimeofday], [Sys.time], [Random.self_init], ...
    - [hashtbl-order]: [Hashtbl.fold]/[iter] (also [Store.fold],
      [Pair_tbl.*]) not syntactically wrapped in a sort.
    - [mutable-payload]: an array literal, [ref], or [Bytes] constructor in
      a [send]/[reply]/[Rpc.call] argument.
    - [poly-compare]: bare [compare], [Stdlib.compare], [Hashtbl.hash], or a
      comparison operator applied to [Port.name] results.
    - [obj-magic]: any [Obj.*] reference.
    - [parse-error]: the file did not parse. *)

val file : path:string -> source:string -> Finding.t list
(** Lint one compilation unit.  [path] is the root-relative path and decides
    the layer context: files under [lib/<dir>/] get that library's layer
    restrictions, anything else (bin, examples) may reference every layer.
    Returns findings sorted by {!Finding.order}. *)
