module Engine = Dcp_sim.Engine
module Rng = Dcp_rng.Rng

type node_id = Topology.node_id

type stats = {
  messages_sent : int;
  messages_delivered : int;
  fragments_sent : int;
  fragments_lost : int;
  fragments_corrupted : int;
  fragments_duplicated : int;
  partition_drops : int;
  bytes_sent : int;
}

(* Internal tallies are mutable fields: the fragment path bumps several per
   send, and a functional record update there allocates per fragment. *)
type tallies = {
  mutable t_messages_sent : int;
  mutable t_messages_delivered : int;
  mutable t_fragments_sent : int;
  mutable t_fragments_lost : int;
  mutable t_fragments_corrupted : int;
  mutable t_fragments_duplicated : int;
  mutable t_partition_drops : int;
  mutable t_bytes_sent : int;
}

let fresh_tallies () =
  {
    t_messages_sent = 0;
    t_messages_delivered = 0;
    t_fragments_sent = 0;
    t_fragments_lost = 0;
    t_fragments_corrupted = 0;
    t_fragments_duplicated = 0;
    t_partition_drops = 0;
    t_bytes_sent = 0;
  }

type t = {
  engine : Engine.t;
  rng : Rng.t;
  topology : Topology.t;
  mtu : int;
  queueing : bool;
  busy_until : (node_id * node_id, Dcp_sim.Clock.time) Hashtbl.t;
      (** per directed link: when its transmitter frees up (queueing mode) *)
  handlers : (node_id, src:node_id -> string -> unit) Hashtbl.t;
  reassembly : (node_id, Packet.Reassembly.t) Hashtbl.t;
  mutable groups : node_id list list option;
  mutable next_msg_id : int;
  mutable tallies : tallies;
}

let create ~engine ~rng ~topology ?(mtu = 1024) ?(queueing = false) () =
  if mtu <= 0 then invalid_arg "Network.create: mtu must be positive";
  {
    engine;
    rng;
    topology;
    mtu;
    queueing;
    busy_until = Hashtbl.create 16;
    handlers = Hashtbl.create 16;
    reassembly = Hashtbl.create 16;
    groups = None;
    next_msg_id = 0;
    tallies = fresh_tallies ();
  }

let engine t = t.engine
let topology t = t.topology
let set_handler t node f = Hashtbl.replace t.handlers node f
let clear_handler t node = Hashtbl.remove t.handlers node

let partition t groups = t.groups <- Some groups
let heal t = t.groups <- None

let partitioned t ~src ~dst =
  match t.groups with
  | None -> false
  | Some groups ->
      let group_of node =
        let rec find i = function
          | [] -> None
          | g :: rest -> if List.mem node g then Some i else find (i + 1) rest
        in
        find 0 groups
      in
      (match (group_of src, group_of dst) with
      | Some a, Some b -> a <> b
      | None, _ | _, None -> src <> dst)

let reassembly_for t node =
  match Hashtbl.find_opt t.reassembly node with
  | Some r -> r
  | None ->
      let r = Packet.Reassembly.create () in
      Hashtbl.add t.reassembly node r;
      r

let deliver_fragment t frag =
  (* Re-check the partition at arrival time: packets in flight when a
     partition forms are lost, like packets on a cut wire. *)
  if partitioned t ~src:frag.Packet.src ~dst:frag.Packet.dst then
    t.tallies.t_partition_drops <- t.tallies.t_partition_drops + 1
  else if not (Packet.intact frag) then
    t.tallies.t_fragments_corrupted <- t.tallies.t_fragments_corrupted + 1
  else begin
    let r = reassembly_for t frag.Packet.dst in
    match Packet.Reassembly.offer r ~now:(Engine.now t.engine) frag with
    | None -> ()
    | Some (src, body) -> (
        match Hashtbl.find_opt t.handlers frag.Packet.dst with
        | None -> ()
        | Some handler ->
            t.tallies.t_messages_delivered <- t.tallies.t_messages_delivered + 1;
            handler ~src body)
  end

let send t ~src ~dst body =
  t.tallies.t_messages_sent <- t.tallies.t_messages_sent + 1;
  if partitioned t ~src ~dst then
    t.tallies.t_partition_drops <- t.tallies.t_partition_drops + 1
  else begin
    let msg_id = t.next_msg_id in
    t.next_msg_id <- t.next_msg_id + 1;
    let link = Topology.link t.topology ~src ~dst in
    let fragments = Packet.fragment ~src ~dst ~msg_id ~mtu:t.mtu body in
    (* In queueing mode the link's transmitter is a FIFO resource: a
       fragment's departure waits behind everything already clocked onto
       this directed link. *)
    let queueing_delay size =
      if not (t.queueing && link.Link.bandwidth <> None) then 0
      else begin
        let key = (src, dst) in
        let now = Engine.now t.engine in
        let free_at = Option.value (Hashtbl.find_opt t.busy_until key) ~default:now in
        let start = Int.max now free_at in
        let depart = start + Link.serialization_time link ~size in
        Hashtbl.replace t.busy_until key depart;
        depart - now
      end
    in
    let include_serialization = not (t.queueing && link.Link.bandwidth <> None) in
    let transmit_one frag =
      let size = Packet.wire_size frag in
      t.tallies.t_fragments_sent <- t.tallies.t_fragments_sent + 1;
      t.tallies.t_bytes_sent <- t.tallies.t_bytes_sent + size;
      let extra = queueing_delay size in
      match Link.transmit link ~include_serialization t.rng ~size with
      | Link.Drop -> t.tallies.t_fragments_lost <- t.tallies.t_fragments_lost + 1
      | Link.Corrupt_deliver delay ->
          let damaged = Packet.corrupt t.rng frag in
          ignore
            (Engine.schedule_after t.engine ~delay:(delay + extra) (fun () ->
                 deliver_fragment t damaged))
      | Link.Deliver delays ->
          if List.length delays > 1 then
            t.tallies.t_fragments_duplicated <- t.tallies.t_fragments_duplicated + 1;
          List.iter
            (fun delay ->
              ignore
                (Engine.schedule_after t.engine ~delay:(delay + extra) (fun () ->
                     deliver_fragment t frag)))
            delays
    in
    List.iter transmit_one fragments
  end

let stats t =
  {
    messages_sent = t.tallies.t_messages_sent;
    messages_delivered = t.tallies.t_messages_delivered;
    fragments_sent = t.tallies.t_fragments_sent;
    fragments_lost = t.tallies.t_fragments_lost;
    fragments_corrupted = t.tallies.t_fragments_corrupted;
    fragments_duplicated = t.tallies.t_fragments_duplicated;
    partition_drops = t.tallies.t_partition_drops;
    bytes_sent = t.tallies.t_bytes_sent;
  }

let reset_stats t = t.tallies <- fresh_tallies ()
