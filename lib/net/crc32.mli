(** CRC-32 (IEEE 802.3 polynomial, reflected).

    The simulator's stand-in for the paper's "redundant information for error
    detection" (§3.3): every packet carries a CRC over its payload, and a
    corrupted packet is recognised and discarded at the receiver. *)

val digest_bytes : bytes -> int32
val digest_string : string -> int32

val digest_sub : bytes -> pos:int -> len:int -> int32
(** CRC of a slice. @raise Invalid_argument on out-of-bounds slices. *)

val digest_substring : string -> pos:int -> len:int -> int32
(** CRC of a string slice without copying it out first (the zero-copy
    half of fragmentation). @raise Invalid_argument on out-of-bounds
    slices. *)

val update : int32 -> char -> int32
(** Incremental interface: fold [update] over bytes starting from {!init} and
    finish with {!finalize}. *)

val init : int32
val finalize : int32 -> int32
