type fragment = {
  src : int;
  dst : int;
  msg_id : int;
  index : int;
  count : int;
  payload : string;
  crc : int32;
}

let header_overhead = 24
let wire_size f = header_overhead + String.length f.payload

let fragment ~src ~dst ~msg_id ~mtu body =
  if mtu <= 0 then invalid_arg "Packet.fragment: mtu must be positive";
  let len = String.length body in
  let count = if len = 0 then 1 else (len + mtu - 1) / mtu in
  let make index =
    let pos = index * mtu in
    let plen = Int.min mtu (len - pos) in
    (* checksum the slice in place: one copy per fragment (the payload),
       not a second one just to feed the CRC *)
    let crc = Crc32.digest_substring body ~pos ~len:plen in
    { src; dst; msg_id; index; count; payload = String.sub body pos plen; crc }
  in
  List.init count make

let intact f = Int32.equal f.crc (Crc32.digest_string f.payload)

let corrupt rng f =
  let len = String.length f.payload in
  if len = 0 then { f with crc = Int32.lognot f.crc }
  else begin
    let byte_index = Dcp_rng.Rng.int rng len in
    let bit = Dcp_rng.Rng.int rng 8 in
    let b = Bytes.of_string f.payload in
    let c = Char.code (Bytes.get b byte_index) in
    Bytes.set b byte_index (Char.chr (c lxor (1 lsl bit)));
    { f with payload = Bytes.to_string b }
  end

module Reassembly = struct
  type partial = {
    count : int;
    slots : string option array;
    mutable filled : int;
    first_seen : Dcp_sim.Clock.time;
  }

  type t = { table : (int * int, partial) Hashtbl.t }

  let create () = { table = Hashtbl.create 64 }

  let fold_in t ~key partial (f : fragment) =
    (match partial.slots.(f.index) with
    | Some _ -> ()
    | None ->
        partial.slots.(f.index) <- Some f.payload;
        partial.filled <- partial.filled + 1);
    if partial.filled = partial.count then begin
      Hashtbl.remove t.table key;
      let pieces =
        Array.to_list
          (Array.map
             (function
               | Some payload -> payload
               | None -> assert false)
             partial.slots)
      in
      Some (f.src, String.concat "" pieces)
    end
    else None

  let offer t ~now (f : fragment) =
    if f.count <= 0 || f.index < 0 || f.index >= f.count then None
    else
      let key = (f.src, f.msg_id) in
      match Hashtbl.find_opt t.table key with
      | Some partial when partial.count <> f.count ->
          (* a header whose count disagrees with the partial's geometry is
             corruption the CRC cannot see (it covers only the payload);
             folding it in could truncate or misassemble the message *)
          None
      | Some partial -> fold_in t ~key partial f
      | None ->
          let partial =
            { count = f.count; slots = Array.make f.count None; filled = 0; first_seen = now }
          in
          Hashtbl.add t.table key partial;
          fold_in t ~key partial f

  let pending t = Hashtbl.length t.table

  let drop_older_than t ~before =
    let stale =
      Hashtbl.fold
        (fun key p acc -> if Dcp_sim.Clock.compare p.first_seen before < 0 then key :: acc else acc)
        t.table []
    in
    List.iter (Hashtbl.remove t.table) stale;
    List.length stale
end
