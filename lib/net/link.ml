module Clock = Dcp_sim.Clock
module Rng = Dcp_rng.Rng

type t = {
  base_latency : Clock.time;
  jitter : Clock.time;
  loss : float;
  duplicate : float;
  corrupt : float;
  bandwidth : int option;
}

let perfect =
  { base_latency = 0; jitter = 0; loss = 0.0; duplicate = 0.0; corrupt = 0.0; bandwidth = None }

let lan =
  {
    base_latency = Clock.us 200;
    jitter = Clock.us 50;
    loss = 0.0001;
    duplicate = 0.0;
    corrupt = 0.00001;
    bandwidth = Some 10_000_000;
  }

let wan =
  {
    base_latency = Clock.ms 30;
    jitter = Clock.ms 10;
    loss = 0.01;
    duplicate = 0.001;
    corrupt = 0.0001;
    bandwidth = Some 1_000_000;
  }

let lossy loss = { lan with loss }

let compose a b =
  {
    base_latency = Clock.add a.base_latency b.base_latency;
    jitter = Clock.add a.jitter b.jitter;
    loss = 1.0 -. ((1.0 -. a.loss) *. (1.0 -. b.loss));
    duplicate = 1.0 -. ((1.0 -. a.duplicate) *. (1.0 -. b.duplicate));
    corrupt = 1.0 -. ((1.0 -. a.corrupt) *. (1.0 -. b.corrupt));
    bandwidth =
      (match (a.bandwidth, b.bandwidth) with
      | None, bw | bw, None -> bw
      | Some x, Some y -> Some (Int.min x y));
  }

type verdict =
  | Deliver of Clock.time list
  | Corrupt_deliver of Clock.time
  | Drop

let serialization_time t ~size =
  match t.bandwidth with
  | None -> 0
  | Some bytes_per_s -> Clock.of_float_s (float_of_int size /. float_of_int bytes_per_s)

let sample_delay t ~serialize rng ~size =
  let jitter =
    if t.jitter = 0 then 0
    else Clock.of_float_s (Rng.exponential rng ~mean:(Clock.to_float_s t.jitter))
  in
  let serialization = if serialize then serialization_time t ~size else 0 in
  Clock.add t.base_latency (Clock.add jitter serialization)

let transmit t ?(include_serialization = true) rng ~size =
  let serialize = include_serialization in
  if Rng.bernoulli rng t.loss then Drop
  else if Rng.bernoulli rng t.corrupt then Corrupt_deliver (sample_delay t ~serialize rng ~size)
  else begin
    let first = sample_delay t ~serialize rng ~size in
    if Rng.bernoulli rng t.duplicate then
      Deliver [ first; sample_delay t ~serialize rng ~size ]
    else Deliver [ first ]
  end
