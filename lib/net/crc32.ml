(* CRC-32 (IEEE 802.3, reflected), computed entirely in native [int]
   arithmetic — the running CRC lives in an immediate, so the inner loop
   allocates nothing — with a slicing-by-8 main loop.

   The 8x256 table set is built eagerly at module initialisation:
   [tables.(0)] is the classic byte-at-a-time table and [tables.(k)] is
   [tables.(k-1)] advanced through one zero byte, so eight input bytes fold
   into the CRC with eight independent table loads and xors per iteration
   instead of eight serial byte steps. *)

let polynomial = 0xedb88320

let tables =
  let t = Array.make_matrix 8 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 <> 0 then (!c lsr 1) lxor polynomial else !c lsr 1
    done;
    t.(0).(n) <- !c
  done;
  for k = 1 to 7 do
    for n = 0 to 255 do
      let prev = t.(k - 1).(n) in
      t.(k).(n) <- (prev lsr 8) lxor t.(0).(prev land 0xff)
    done
  done;
  t

let t0 = tables.(0)
let t1 = tables.(1)
let t2 = tables.(2)
let t3 = tables.(3)
let t4 = tables.(4)
let t5 = tables.(5)
let t6 = tables.(6)
let t7 = tables.(7)

let init = 0xffffffffl
let finalize crc = Int32.logxor crc 0xffffffffl

let update crc ch =
  let c = Int32.to_int crc land 0xffffffff in
  Int32.of_int ((c lsr 8) lxor t0.((c lxor Char.code ch) land 0xff))

(* Bounds are the caller's responsibility; [pos, pos+len) must be valid. *)
let digest_raw s pos len =
  let crc = ref 0xffffffff in
  let i = ref pos in
  let fin = pos + len in
  let last8 = fin - 8 in
  while !i <= last8 do
    let j = !i in
    let b0 = Char.code (String.unsafe_get s j)
    and b1 = Char.code (String.unsafe_get s (j + 1))
    and b2 = Char.code (String.unsafe_get s (j + 2))
    and b3 = Char.code (String.unsafe_get s (j + 3))
    and b4 = Char.code (String.unsafe_get s (j + 4))
    and b5 = Char.code (String.unsafe_get s (j + 5))
    and b6 = Char.code (String.unsafe_get s (j + 6))
    and b7 = Char.code (String.unsafe_get s (j + 7)) in
    let x = !crc lxor (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)) in
    crc :=
      t7.(x land 0xff)
      lxor t6.((x lsr 8) land 0xff)
      lxor t5.((x lsr 16) land 0xff)
      lxor t4.(x lsr 24)
      lxor t3.(b4)
      lxor t2.(b5)
      lxor t1.(b6)
      lxor t0.(b7);
    i := j + 8
  done;
  while !i < fin do
    crc := (!crc lsr 8) lxor t0.((!crc lxor Char.code (String.unsafe_get s !i)) land 0xff);
    incr i
  done;
  Int32.of_int (!crc lxor 0xffffffff)

let digest_substring s ~pos ~len =
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Crc32.digest_substring";
  digest_raw s pos len

let digest_sub b ~pos ~len =
  if pos < 0 || len < 0 || pos > Bytes.length b - len then invalid_arg "Crc32.digest_sub";
  digest_raw (Bytes.unsafe_to_string b) pos len

let digest_string s = digest_raw s 0 (String.length s)
let digest_bytes b = digest_raw (Bytes.unsafe_to_string b) 0 (Bytes.length b)
