(** Packets: fragmentation and reassembly.

    §3.3 makes the system "responsible for the low-level protocols involved in
    actually transmitting a message, e.g. breaking a large message into
    packets and reassembling the packets".  A message larger than the MTU is
    split into fragments sharing a message id; the receiver reassembles once
    all fragments of a message have arrived.  Each fragment carries a CRC-32
    so in-flight corruption is detected and the fragment discarded. *)

type fragment = {
  src : int;  (** sending node *)
  dst : int;  (** receiving node *)
  msg_id : int;  (** unique per (src, message) *)
  index : int;  (** fragment number, 0-based *)
  count : int;  (** total fragments of the message *)
  payload : string;
  crc : int32;  (** CRC-32 of [payload] *)
}

val header_overhead : int
(** Bytes of header accounting added to each fragment when sizing
    transmissions. *)

val wire_size : fragment -> int

val fragment : src:int -> dst:int -> msg_id:int -> mtu:int -> string -> fragment list
(** Split a message body into CRC-stamped fragments of at most [mtu] payload
    bytes.  An empty body yields one empty fragment.
    @raise Invalid_argument if [mtu <= 0]. *)

val intact : fragment -> bool
(** [intact f] checks [f.payload] against [f.crc]. *)

val corrupt : Dcp_rng.Rng.t -> fragment -> fragment
(** Flip one random bit of the payload (leaving the CRC stale), modelling a
    transmission error.  Fragments with empty payloads get a stale CRC
    instead. *)

(** Reassembly buffer for one receiving node. *)
module Reassembly : sig
  type t

  val create : unit -> t

  val offer : t -> now:Dcp_sim.Clock.time -> fragment -> (int * string) option
  (** Accept a fragment; when it completes its message, return
      [(src, whole_body)] and discard the buffered state.  Duplicate
      fragments are ignored.  Corrupt fragments must be filtered out by the
      caller before offering — but the payload CRC cannot vouch for the
      header, so [offer] additionally rejects fragments whose geometry is
      implausible ([count <= 0], [index] outside [0, count)]) or whose
      [count] disagrees with the partial already being assembled; such a
      fragment returns [None] and leaves the partial untouched. *)

  val pending : t -> int
  (** Number of partially reassembled messages held. *)

  val drop_older_than : t -> before:Dcp_sim.Clock.time -> int
  (** Garbage-collect partial messages whose first fragment arrived before
      [before]; returns how many were dropped. *)
end
