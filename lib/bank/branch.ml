open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Store = Dcp_stable.Store
module Rpc = Dcp_primitives.Rpc

let def_name = "bank_branch"

let port_type =
  [
    Rpc.request_signature "open_account" [ Vtype.Tstr ]
      ~replies:[ Vtype.reply "ok" [ Vtype.Tint ] ];
    Rpc.request_signature "deposit" [ Vtype.Tstr; Vtype.Tint ]
      ~replies:[ Vtype.reply "ok" [ Vtype.Tint ]; Vtype.reply "no_account" [] ];
    Rpc.request_signature "withdraw" [ Vtype.Tstr; Vtype.Tint ]
      ~replies:
        [
          Vtype.reply "ok" [ Vtype.Tint ];
          Vtype.reply "insufficient" [];
          Vtype.reply "no_account" [];
        ];
    Rpc.request_signature "balance" [ Vtype.Tstr ]
      ~replies:[ Vtype.reply "balance" [ Vtype.Tint ]; Vtype.reply "no_account" [] ];
    Rpc.request_signature "total" [] ~replies:[ Vtype.reply "total" [ Vtype.Tint ] ];
  ]

let account_key account = "a:" ^ account
let response_key id = Printf.sprintf "q:%d" id

let get_balance store account =
  Option.map int_of_string (Store.get store ~key:(account_key account))

let set_balance store account amount =
  Store.set store ~key:(account_key account) (string_of_int amount)

(* The actual (non-idempotent) operations; exactly-once is layered on top. *)
let apply store command args =
  match (command, args) with
  | "open_account", [ Value.Str account ] ->
      (match get_balance store account with
      | Some balance -> ("ok", [ Value.int balance ])
      | None ->
          set_balance store account 0;
          ("ok", [ Value.int 0 ]))
  | "deposit", [ Value.Str account; Value.Int amount ] ->
      (match get_balance store account with
      | None -> ("no_account", [])
      | Some balance ->
          let balance = balance + amount in
          set_balance store account balance;
          ("ok", [ Value.int balance ]))
  | "withdraw", [ Value.Str account; Value.Int amount ] ->
      (match get_balance store account with
      | None -> ("no_account", [])
      | Some balance ->
          if balance < amount then ("insufficient", [])
          else begin
            let balance = balance - amount in
            set_balance store account balance;
            ("ok", [ Value.int balance ])
          end)
  | "balance", [ Value.Str account ] ->
      (match get_balance store account with
      | None -> ("no_account", [])
      | Some balance -> ("balance", [ Value.int balance ]))
  | "total", [] ->
      let total =
        Store.fold store ~init:0 ~f:(fun ~key value acc ->
            if String.length key > 2 && String.equal (String.sub key 0 2) "a:" then
              acc + int_of_string value
            else acc)
      in
      ("total", [ Value.int total ])
  | _ -> ("failure", [ Value.str "unknown branch request" ])

(* Exactly-once: the response to each mutating request id is made permanent
   *in the same store* as the balances, so a duplicate — even one arriving
   after a crash and recovery — is answered from the record instead of
   being re-applied. *)
let mutating = function "deposit" | "withdraw" | "open_account" -> true | _ -> false

let handle ctx msg =
  let store = Runtime.store ctx in
  match (msg.Message.args, msg.Message.reply_to) with
  | Value.Int id :: rest, Some reply ->
      let command = msg.Message.command in
      let reply_command, reply_args =
        if mutating command then (
          match Store.get store ~key:(response_key id) with
          | Some recorded -> (
              match Codec.decode_exn recorded with
              | Value.Tuple [ Value.Str c; Value.Listv a ] -> (c, a)
              | _ -> ("failure", [ Value.str "corrupt response record" ]))
          | None ->
              let c, a = apply store command rest in
              Store.set store ~key:(response_key id)
                (Codec.encode_exn (Value.tuple [ Value.str c; Value.list a ]));
              (c, a))
        else apply store command rest
      in
      Runtime.send ctx ~to_:reply reply_command (Value.int id :: reply_args)
  | _, _ -> ()

let serve ctx =
  let request_port = Runtime.port ctx 0 in
  let rec loop () =
    (match Runtime.receive ctx [ request_port ] with
    | `Timeout -> ()
    | `Msg (_, msg) -> handle ctx msg);
    loop ()
  in
  loop ()

(* Read-only store accessors for audit/oracle code: the key formats stay
   private to this module. *)
let balance_in_store store ~account = get_balance store account

let total_in_store store =
  Store.fold store ~init:0 ~f:(fun ~key value acc ->
      if String.length key > 2 && String.equal (String.sub key 0 2) "a:" then
        acc + int_of_string value
      else acc)

let recorded_response store ~request_id =
  match Store.get store ~key:(response_key request_id) with
  | None -> None
  | Some recorded -> (
      match Codec.decode_exn recorded with
      | Value.Tuple [ Value.Str command; Value.Listv _ ] -> Some command
      | _ -> Some "corrupt")

let def : Runtime.def =
  {
    Runtime.def_name;
    provides = [ (port_type, 256) ];
    init =
      (fun ctx args ->
        let store = Runtime.store ctx in
        List.iter
          (fun v ->
            match v with
            | Value.Tuple [ Value.Str account; Value.Int opening ] ->
                set_balance store account opening
            | _ -> invalid_arg "bank branch: bad account seed")
          args;
        serve ctx);
    recover = Some serve;
  }

let create world ~at ~accounts () =
  if Runtime.find_def world def_name = None then Runtime.register_def world def;
  let args =
    List.map (fun (account, opening) -> Value.tuple [ Value.str account; Value.int opening ]) accounts
  in
  let g = Runtime.create_guardian world ~at ~def_name ~args in
  List.hd (Runtime.guardian_ports g)
