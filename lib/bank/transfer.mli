(** The transfer coordinator guardian: a crash-recoverable two-step saga.

    A cross-branch transfer needs a withdraw at one guardian and a deposit
    at another.  The coordinator logs the transfer's stage in its stable
    store *before* each step, so its recovery process can re-drive
    transfers that were in flight when the node crashed.  Re-driving is
    safe because each step uses a request id derived from the logged
    transfer id, and branches record responses by request id — the retried
    step is answered from the branch's record instead of being re-applied.

    Together with {!Branch}, this demonstrates the §2.2 claim that
    "permanence of effect is crucial for using information about the result
    obtained by a message exchange as a basis for future actions": the
    coordinator's future actions (deposit, refund, reply) are driven
    entirely by logged results.

    Port (RPC convention):
    {v
    transfer(from_branch, from_account, to_branch, to_account, amount)
      replies (ok, insufficient, no_account, failed(string))
    v}
    Branches are named by their index into the directory passed at
    creation. *)

open Dcp_wire

val def_name : string
val port_type : Vtype.port_type
val def : Dcp_core.Runtime.def

val create :
  Dcp_core.Runtime.world ->
  at:Dcp_core.Runtime.node_id ->
  branches:Port_name.t list ->
  unit ->
  Port_name.t

val incomplete_transfers : Dcp_core.Runtime.world -> int
(** Transfers currently logged as in flight across all coordinators
    (0 once everything has settled) — used by conservation tests. *)

val step_request_ids : tid:int -> int * int * int
(** The (withdraw, deposit, refund) request ids the coordinator derives
    from transfer [tid].  These key the branches' stable response records,
    so an oracle can reconstruct the ground-truth commit decision of every
    settled transfer from the branch stores alone. *)
