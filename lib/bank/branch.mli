(** A bank branch guardian.

    The banking system is the other application the paper's introduction
    motivates ("banking systems, airline reservation systems, office
    automation").  A branch guards the accounts of one bank branch:
    balances live in the guardian's stable store, every mutation is logged
    before it is acknowledged (permanence of effect, §2.2), and the
    guardian recovers after a node crash.

    Unlike the airline's reserve/cancel, [deposit] and [withdraw] are *not*
    idempotent, so the branch provides exactly-once execution instead: the
    response to each request id is recorded in the stable store, and a
    retransmitted request is answered from that record rather than
    re-applied.  Because the record is stable, this holds across branch
    crashes too — the complementary robustness design to §3.5's
    idempotency, and the E4 ablation's third arm.

    Port (RPC convention — request id first):
    {v
    open_account(account)            replies (ok(balance))
    deposit(account, amount)         replies (ok(balance), no_account)
    withdraw(account, amount)        replies (ok(balance), insufficient, no_account)
    balance(account)                 replies (balance(amount), no_account)
    total()                          replies (total(amount))
    v} *)

open Dcp_wire

val def_name : string
val port_type : Vtype.port_type
val def : Dcp_core.Runtime.def

val create :
  Dcp_core.Runtime.world ->
  at:Dcp_core.Runtime.node_id ->
  accounts:(string * int) list ->
  unit ->
  Port_name.t
(** Create a branch seeded with [(account, opening balance)] pairs. *)

(** {1 Oracle accessors}

    Read-only views over a (recovered) branch store, so audit and
    model-checking code never parses the store's key format itself. *)

val balance_in_store : Dcp_stable.Store.t -> account:string -> int option

val total_in_store : Dcp_stable.Store.t -> int
(** Sum of all account balances held in the store. *)

val recorded_response : Dcp_stable.Store.t -> request_id:int -> string option
(** The reply command the branch durably recorded for a mutating request
    id ([None] if the request never executed) — the ground truth a model
    oracle replays to learn which transfer steps actually committed. *)
