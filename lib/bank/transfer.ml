open Dcp_wire
module Runtime = Dcp_core.Runtime
module Message = Dcp_core.Message
module Store = Dcp_stable.Store
module Rpc = Dcp_primitives.Rpc
module Clock = Dcp_sim.Clock

let def_name = "bank_transfer"

let transfer_replies =
  [
    Vtype.reply "ok" [];
    Vtype.reply "insufficient" [];
    Vtype.reply "no_account" [];
    Vtype.reply "failed" [ Vtype.Tstr ];
  ]

let port_type =
  [
    Rpc.request_signature "transfer"
      [ Vtype.Tint; Vtype.Tstr; Vtype.Tint; Vtype.Tstr; Vtype.Tint ]
      ~replies:transfer_replies;
  ]

type stage = Withdrawing | Depositing | Refunding

let stage_to_string = function
  | Withdrawing -> "withdrawing"
  | Depositing -> "depositing"
  | Refunding -> "refunding"

let stage_of_string = function
  | "withdrawing" -> Withdrawing
  | "depositing" -> Depositing
  | "refunding" -> Refunding
  | s -> invalid_arg ("transfer: unknown stage " ^ s)

type record = {
  tid : int;
  stage : stage;
  from_branch : int;
  from_account : string;
  to_branch : int;
  to_account : string;
  amount : int;
  reply : Port_name.t option;
}

let record_key tid = Printf.sprintf "t:%d" tid

let encode_record r =
  Codec.encode_exn
    (Value.record
       [
         ("tid", Value.int r.tid);
         ("stage", Value.str (stage_to_string r.stage));
         ("from_branch", Value.int r.from_branch);
         ("from_account", Value.str r.from_account);
         ("to_branch", Value.int r.to_branch);
         ("to_account", Value.str r.to_account);
         ("amount", Value.int r.amount);
         ("reply", Value.option (Option.map Value.port r.reply));
       ])

let decode_record encoded =
  let v = Codec.decode_exn encoded in
  {
    tid = Value.get_int (Value.field v "tid");
    stage = stage_of_string (Value.get_str (Value.field v "stage"));
    from_branch = Value.get_int (Value.field v "from_branch");
    from_account = Value.get_str (Value.field v "from_account");
    to_branch = Value.get_int (Value.field v "to_branch");
    to_account = Value.get_str (Value.field v "to_account");
    amount = Value.get_int (Value.field v "amount");
    reply = Option.map Value.get_port (Value.get_option (Value.field v "reply"));
  }

(* Step request ids are derived from the transfer id so a re-driven step
   after a coordinator crash reuses the id its first incarnation used, and
   the branch's response record answers it.  The offset keeps them out of
   the Rpc global counter's range. *)
let step_id tid = function
  | Withdrawing -> 3_000_000_000 + (tid * 4)
  | Depositing -> 3_000_000_000 + (tid * 4) + 1
  | Refunding -> 3_000_000_000 + (tid * 4) + 2

let step_request_ids ~tid =
  (step_id tid Withdrawing, step_id tid Depositing, step_id tid Refunding)

let set_stage ctx r stage =
  let r = { r with stage } in
  Store.set (Runtime.store ctx) ~key:(record_key r.tid) (encode_record r);
  r

let finish ctx r reply_command reply_args =
  Store.remove (Runtime.store ctx) ~key:(record_key r.tid);
  match r.reply with
  | None -> ()
  | Some reply ->
      (* The requester may be long gone (it timed out, or its node
         crashed); a failure notice for the dead port is acceptable. *)
      Runtime.send ctx ~to_:reply reply_command (Value.int r.tid :: reply_args)

let branch_call ctx branches r stage command args =
  let target =
    match stage with
    | Withdrawing | Refunding -> branches.(r.from_branch)
    | Depositing -> branches.(r.to_branch)
  in
  Rpc.call ctx ~to_:target ~timeout:(Clock.ms 500) ~attempts:5 ~request_id:(step_id r.tid stage)
    command args

(* Drive a transfer from its current stage to completion. *)
let rec drive ctx branches r =
  match r.stage with
  | Withdrawing -> (
      match
        branch_call ctx branches r Withdrawing "withdraw"
          [ Value.str r.from_account; Value.int r.amount ]
      with
      | Rpc.Reply ("ok", _) -> drive ctx branches (set_stage ctx r Depositing)
      | Rpc.Reply ("insufficient", _) -> finish ctx r "insufficient" []
      | Rpc.Reply ("no_account", _) -> finish ctx r "no_account" []
      | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout ->
          (* The source branch is unreachable beyond our patience; nothing
             has happened yet, so the transfer fails cleanly. *)
          finish ctx r "failed" [ Value.str "source branch unreachable" ])
  | Depositing -> (
      match
        branch_call ctx branches r Depositing "deposit"
          [ Value.str r.to_account; Value.int r.amount ]
      with
      | Rpc.Reply ("ok", _) -> finish ctx r "ok" []
      | Rpc.Reply ("no_account", _) -> drive ctx branches (set_stage ctx r Refunding)
      | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout ->
          (* Money is out of the source account: we must not give up, or it
             evaporates.  Park the transfer and retry later; recovery will
             also re-drive it if we crash meanwhile. *)
          Runtime.sleep ctx (Clock.s 1);
          drive ctx branches r)
  | Refunding -> (
      match
        branch_call ctx branches r Refunding "deposit"
          [ Value.str r.from_account; Value.int r.amount ]
      with
      | Rpc.Reply ("ok", _) -> finish ctx r "no_account" []
      | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout ->
          Runtime.sleep ctx (Clock.s 1);
          drive ctx branches r)

let parse_branches args = Array.of_list (List.map Value.get_port args)

let handle ctx branches msg =
  match (msg.Message.args, msg.Message.reply_to) with
  | ( [
        Value.Int tid;
        Value.Int from_branch;
        Value.Str from_account;
        Value.Int to_branch;
        Value.Str to_account;
        Value.Int amount;
      ],
      reply ) ->
      if from_branch < 0 || from_branch >= Array.length branches || to_branch < 0
         || to_branch >= Array.length branches || amount <= 0
      then (
        match reply with
        | Some reply ->
            Runtime.send ctx ~to_:reply "failed" [ Value.int tid; Value.str "bad transfer request" ]
        | None -> ())
      else begin
        let r =
          { tid; stage = Withdrawing; from_branch; from_account; to_branch; to_account; amount; reply }
        in
        (match Store.get (Runtime.store ctx) ~key:(record_key tid) with
        | Some _ -> ()  (* duplicate transfer request: already being driven *)
        | None ->
            Store.set (Runtime.store ctx) ~key:(record_key tid) (encode_record r);
            ignore
              (Runtime.spawn ctx ~name:(Printf.sprintf "transfer.%d" tid) (fun () ->
                   drive ctx branches r)))
      end
  | _, _ -> ()

let serve ctx branches =
  let request_port = Runtime.port ctx 0 in
  let rec loop () =
    (match Runtime.receive ctx [ request_port ] with
    | `Timeout -> ()
    | `Msg (_, msg) -> handle ctx branches msg);
    loop ()
  in
  loop ()

let config_key = "_branches"

let def : Runtime.def =
  {
    Runtime.def_name;
    provides = [ (port_type, 256) ];
    init =
      (fun ctx args ->
        Store.set (Runtime.store ctx) ~key:config_key (Codec.encode_exn (Value.list args));
        serve ctx (parse_branches args));
    recover =
      Some
        (fun ctx ->
          match Store.get (Runtime.store ctx) ~key:config_key with
          | None -> Runtime.self_destruct ctx
          | Some encoded ->
              let branches = parse_branches (Value.get_list (Codec.decode_exn encoded)) in
              (* Re-drive every transfer that was in flight at the crash,
                 in key order so recovery spawns deterministically. *)
              let pending =
                List.filter_map
                  (fun (key, value) ->
                    if String.length key > 2 && String.equal (String.sub key 0 2) "t:" then
                      Some (decode_record value)
                    else None)
                  (Store.to_alist (Runtime.store ctx))
              in
              List.iter
                (fun r ->
                  ignore
                    (Runtime.spawn ctx ~name:(Printf.sprintf "transfer.recover.%d" r.tid)
                       (fun () -> drive ctx branches r)))
                pending;
              serve ctx branches);
  }

let create world ~at ~branches () =
  if Runtime.find_def world def_name = None then Runtime.register_def world def;
  let g = Runtime.create_guardian world ~at ~def_name ~args:(List.map Value.port branches) in
  List.hd (Runtime.guardian_ports g)

let incomplete_transfers world =
  let count_in g =
    let store = Runtime.guardian_store g in
    if Store.is_crashed store then 0
    else
      Store.fold store ~init:0 ~f:(fun ~key _value acc ->
          if String.length key > 2 && String.equal (String.sub key 0 2) "t:" then acc + 1
          else acc)
  in
  List.fold_left (fun acc g -> acc + count_in g) 0 (Runtime.find_guardians world ~def_name)
