type principal = string
type permission = string

module Pair = struct
  type t = string * string

  let equal (a1, b1) (a2, b2) = String.equal a1 a2 && String.equal b1 b2
  let hash (a, b) = (String.hash a * 0x01000193) lxor String.hash b
end

module Pair_tbl = Hashtbl.Make (Pair)

type t = {
  direct : unit Pair_tbl.t;  (** (principal, permission) *)
  group_grants : unit Pair_tbl.t;  (** (group, permission) *)
  membership : unit Pair_tbl.t;  (** (principal, group) *)
  mutable public : permission list;
}

let create () =
  {
    direct = Pair_tbl.create 16;
    group_grants = Pair_tbl.create 16;
    membership = Pair_tbl.create 16;
    public = [];
  }

let grant t ~principal ~permission = Pair_tbl.replace t.direct (principal, permission) ()
let revoke t ~principal ~permission = Pair_tbl.remove t.direct (principal, permission)

let allow_all t ~permission =
  if not (List.mem permission t.public) then t.public <- permission :: t.public

let disallow_all t ~permission =
  t.public <- List.filter (fun p -> not (String.equal p permission)) t.public

let add_to_group t ~principal ~group = Pair_tbl.replace t.membership (principal, group) ()
let remove_from_group t ~principal ~group = Pair_tbl.remove t.membership (principal, group)
let grant_group t ~group ~permission = Pair_tbl.replace t.group_grants (group, permission) ()
let revoke_group t ~group ~permission = Pair_tbl.remove t.group_grants (group, permission)

let groups_of t principal =
  List.sort String.compare
    (Pair_tbl.fold
       (fun (p, group) () acc -> if String.equal p principal then group :: acc else acc)
       t.membership [])

let check t ~principal ~permission =
  List.mem permission t.public
  || Pair_tbl.mem t.direct (principal, permission)
  || List.exists
       (fun group -> Pair_tbl.mem t.group_grants (group, permission))
       (groups_of t principal)

let permissions_of t ~principal =
  let direct =
    Pair_tbl.fold
      (fun (p, permission) () acc -> if String.equal p principal then permission :: acc else acc)
      t.direct []
  in
  let via_groups =
    List.concat_map
      (fun group ->
        Pair_tbl.fold
          (fun (g, permission) () acc -> if String.equal g group then permission :: acc else acc)
          t.group_grants [])
      (groups_of t principal)
  in
  List.sort_uniq String.compare (t.public @ direct @ via_groups)

let principals_with t ~permission =
  let direct =
    Pair_tbl.fold
      (fun (principal, p) () acc -> if String.equal p permission then principal :: acc else acc)
      t.direct []
  in
  let groups =
    Pair_tbl.fold
      (fun (group, p) () acc -> if String.equal p permission then group :: acc else acc)
      t.group_grants []
  in
  let members =
    Pair_tbl.fold
      (fun (principal, group) () acc -> if List.mem group groups then principal :: acc else acc)
      t.membership []
  in
  List.sort_uniq String.compare (direct @ members)
