open Dcp_wire
module Clock = Dcp_sim.Clock
module Engine = Dcp_sim.Engine
module Metrics = Dcp_sim.Metrics
module Trace = Dcp_sim.Trace
module Network = Dcp_net.Network
module Topology = Dcp_net.Topology
module Store = Dcp_stable.Store
module Rng = Dcp_rng.Rng

type node_id = int

type config = {
  codec : Codec.config;
  mtu : int;
  local_delay : Clock.time;
  crash_tear_p : float;
  default_port_capacity : int;
  processors_per_node : int;
}

let default_config =
  {
    codec = Codec.default_config;
    mtu = 1024;
    local_delay = Clock.us 5;
    crash_tear_p = 0.3;
    default_port_capacity = 64;
    processors_per_node = 8;
  }

(* Metric handles resolved once at world creation so the per-message path
   (send -> route -> deliver) never does a string-keyed registry lookup. *)
type hot_metrics = {
  m_send_total : Metrics.counter;
  m_send_local : Metrics.counter;
  m_send_remote : Metrics.counter;
  m_send_dead : Metrics.counter;
  m_deliver_ok : Metrics.counter;
  m_deliver_discarded : Metrics.counter;
  m_failure_sent : Metrics.counter;
  m_deliver_unknown_node : Metrics.counter;
  m_deliver_node_down : Metrics.counter;
  m_deliver_malformed : Metrics.counter;
  m_latency_us : Metrics.histogram;
}

type world = {
  engine : Engine.t;
  network : Network.t;
  config : config;
  registry : Transmit.registry;
  metrics : Metrics.registry;
  hot : hot_metrics;
  encoder : Codec.encoder;  (** scratch-buffer encoder for the send path *)
  trace : Trace.t;
  sys_rng : Rng.t;  (** secrets, crash tears *)
  workload_rng : Rng.t;  (** handed to user workload generators *)
  nodes : (node_id, node) Hashtbl.t;
  defs : (string, def) Hashtbl.t;
  guardians_by_def : (string, guardian list ref) Hashtbl.t;  (** newest first *)
  mutable next_guardian_id : int;
  mutable next_port_uid : int;
}

and node = {
  node_id : node_id;
  world : world;
  mutable up : bool;
  mutable guardians : guardian list;  (** newest first *)
  gindex : (int, guardian) Hashtbl.t;  (** gid -> guardian, for delivery *)
  mutable crash_count : int;
  mutable cpus : Sync.semaphore;  (** the node's processors (§1.1) *)
}

and guardian = {
  gid : int;
  gdef : def;
  home : node;
  secret : int64;
  gstore : Store.t;
  mutable galive : bool;
  mutable gports : Port.t list;  (** creation order *)
  gport_index : (int, Port.t) Hashtbl.t;  (** port uid -> port, for delivery *)
  mutable next_port_index : int;
      (** monotonic: indices are never reused, even after {!remove_port} *)
  mutable gprocs : Process.t list;
}

and def = {
  def_name : string;
  provides : (Vtype.port_type * int) list;
  init : ctx -> Value.t list -> unit;
  recover : (ctx -> unit) option;
}

and ctx = { cworld : world; cguardian : guardian }

let engine w = w.engine
let network w = w.network
let now w = Engine.now w.engine
let run w = Engine.run w.engine
let run_for w d = Engine.run_for w.engine d
let metrics w = w.metrics
let trace w = w.trace
let registry w = w.registry
let world_rng w = w.workload_rng

let count w name = Metrics.incr (Metrics.counter w.metrics name)
let tracef w category fmt = Trace.recordf w.trace ~at:(now w) ~category fmt

let register_def w def =
  if Hashtbl.mem w.defs def.def_name then
    invalid_arg (Printf.sprintf "Runtime.register_def: %s already registered" def.def_name);
  Hashtbl.replace w.defs def.def_name def

let find_def w name = Hashtbl.find_opt w.defs name

let guardian_id g = g.gid
let guardian_def_name g = g.gdef.def_name
let guardian_node g = g.home.node_id
let guardian_alive g = g.galive
let guardian_ports g = List.map Port.name g.gports
let guardians_at w node_id =
  match Hashtbl.find_opt w.nodes node_id with
  | None -> []
  | Some node -> List.rev node.guardians

let guardian_store g = g.gstore

let find_guardians w ~def_name =
  match Hashtbl.find_opt w.guardians_by_def def_name with
  | None -> []
  | Some gs -> List.rev !gs

let node_up w node_id =
  match Hashtbl.find_opt w.nodes node_id with None -> false | Some n -> n.up

let crash_count w node_id =
  match Hashtbl.find_opt w.nodes node_id with None -> 0 | Some n -> n.crash_count

let ctx_world c = c.cworld
let ctx_guardian c = c.cguardian
let ctx_node c = c.cguardian.home.node_id
let ctx_now c = now c.cworld

exception Send_failed of string

(* ------------------------------------------------------------------ *)
(* Delivery                                                            *)
(* ------------------------------------------------------------------ *)

let find_port_in g target =
  match Hashtbl.find_opt g.gport_index target.Port_name.uid with
  | Some p when Port_name.equal (Port.name p) target -> Some p
  | Some _ | None -> None

let find_guardian_in node gid = Hashtbl.find_opt node.gindex gid

(* Forward reference so [reject] can send system failure messages through
   the normal routing path without mutual module recursion. *)
let route_ref :
    (world -> from_node:node_id -> target:Port_name.t -> Message.t -> unit) ref =
  ref (fun _ ~from_node:_ ~target:_ _ -> assert false)

let reject w node msg reason =
  Metrics.incr w.hot.m_deliver_discarded;
  tracef w "discard" "%s: %a" reason Message.pp msg;
  match msg.Message.reply_to with
  | Some reply_port when not (Message.is_failure msg) ->
      Metrics.incr w.hot.m_failure_sent;
      let failure = Message.failure ~reason ~sent_at:(now w) in
      !route_ref w ~from_node:node.node_id ~target:reply_port failure
  | Some _ | None -> ()

let deliver_message w node target msg =
  match find_guardian_in node target.Port_name.guardian with
  | None -> reject w node msg "target guardian does not exist"
  | Some g when not g.galive -> reject w node msg "target guardian does not exist"
  | Some g -> (
      match find_port_in g target with
      | None -> reject w node msg "target port does not exist"
      | Some port -> (
          match Vtype.check_message (Port.ptype port) ~command:msg.Message.command msg.Message.args with
          | Error reason -> reject w node msg ("message rejected: " ^ reason)
          | Ok () -> (
              match Port.enqueue port msg with
              | `Delivered | `Queued ->
                  Metrics.incr w.hot.m_deliver_ok;
                  Metrics.observe w.hot.m_latency_us
                    (Clock.to_float_us (Clock.diff (now w) msg.Message.sent_at))
              | `Full -> reject w node msg "no room at target port"
              | `Closed -> reject w node msg "target port does not exist")))

let deliver_body w dst_node_id body =
  match Hashtbl.find_opt w.nodes dst_node_id with
  | None -> Metrics.incr w.hot.m_deliver_unknown_node
  | Some node ->
      if not node.up then Metrics.incr w.hot.m_deliver_node_down
      else (
        match Codec.decode ~config:w.config.codec body with
        | Error _ -> Metrics.incr w.hot.m_deliver_malformed
        | Ok env -> (
            match Message.of_envelope env with
            | Error _ -> Metrics.incr w.hot.m_deliver_malformed
            | Ok (target, msg) -> deliver_message w node target msg))

(* Route an already-composed message from a node to a target port,
   encoding it on the way out (bounds checks apply to system messages
   too). *)
let route w ~from_node ~target msg =
  let env = Message.envelope ~target msg in
  match Codec.encode_with w.encoder env with
  | Error e -> raise (Send_failed (Format.asprintf "%a" Codec.pp_error e))
  | Ok body ->
      if target.Port_name.node = from_node then begin
        Metrics.incr w.hot.m_send_local;
        ignore
          (Engine.schedule_after w.engine ~delay:w.config.local_delay (fun () ->
               deliver_body w target.Port_name.node body))
      end
      else begin
        Metrics.incr w.hot.m_send_remote;
        Network.send w.network ~src:from_node ~dst:target.Port_name.node body
      end

let () = route_ref := route

(* ------------------------------------------------------------------ *)
(* World setup                                                         *)
(* ------------------------------------------------------------------ *)

let install_handler w node =
  Network.set_handler w.network node.node_id (fun ~src:_ body ->
      deliver_body w node.node_id body)

let create_world ~seed ~topology ?(config = default_config) () =
  let root = Rng.create ~seed in
  let net_rng = Rng.split root in
  let sys_rng = Rng.split root in
  let workload_rng = Rng.split root in
  let engine = Engine.create () in
  let network = Network.create ~engine ~rng:net_rng ~topology ~mtu:config.mtu () in
  let metrics = Metrics.registry () in
  let hot =
    {
      m_send_total = Metrics.counter metrics "send.total";
      m_send_local = Metrics.counter metrics "send.local";
      m_send_remote = Metrics.counter metrics "send.remote";
      m_send_dead = Metrics.counter metrics "send.dead_guardian";
      m_deliver_ok = Metrics.counter metrics "deliver.ok";
      m_deliver_discarded = Metrics.counter metrics "deliver.discarded";
      m_failure_sent = Metrics.counter metrics "failure.sent";
      m_deliver_unknown_node = Metrics.counter metrics "deliver.unknown_node";
      m_deliver_node_down = Metrics.counter metrics "deliver.node_down";
      m_deliver_malformed = Metrics.counter metrics "deliver.malformed";
      m_latency_us = Metrics.histogram metrics "latency.message_us";
    }
  in
  let w =
    {
      engine;
      network;
      config;
      registry = Transmit.registry ();
      metrics;
      hot;
      encoder = Codec.encoder ~config:config.codec ();
      trace = Trace.create ();
      sys_rng;
      workload_rng;
      nodes = Hashtbl.create 16;
      defs = Hashtbl.create 16;
      guardians_by_def = Hashtbl.create 16;
      next_guardian_id = 0;
      next_port_uid = 0;
    }
  in
  List.iter
    (fun node_id ->
      let node =
        {
          node_id;
          world = w;
          up = true;
          guardians = [];
          gindex = Hashtbl.create 16;
          crash_count = 0;
          cpus = Sync.semaphore engine config.processors_per_node;
        }
      in
      Hashtbl.replace w.nodes node_id node;
      install_handler w node)
    (Topology.nodes topology);
  w

(* ------------------------------------------------------------------ *)
(* Guardian lifecycle                                                  *)
(* ------------------------------------------------------------------ *)

let fresh_port w ~gid ~node_id ~index ~ptype ~capacity =
  let uid = w.next_port_uid in
  w.next_port_uid <- uid + 1;
  let name = Port_name.make ~node:node_id ~guardian:gid ~index ~uid in
  Port.create ~name ~ptype ~capacity

let spawn_in g ~name body =
  let p = Process.spawn g.home.world.engine ~name body in
  g.gprocs <- p :: g.gprocs;
  p

let create_guardian_at w node ~def ~args =
  if not node.up then invalid_arg "Runtime.create_guardian: node is down";
  let gid = w.next_guardian_id in
  w.next_guardian_id <- gid + 1;
  let g =
    {
      gid;
      gdef = def;
      home = node;
      secret = Rng.bits64 w.sys_rng;
      gstore = Store.create ();
      galive = true;
      gports = [];
      gport_index = Hashtbl.create 8;
      next_port_index = 0;
      gprocs = [];
    }
  in
  let make_port index (ptype, capacity) =
    fresh_port w ~gid ~node_id:node.node_id ~index ~ptype ~capacity
  in
  g.gports <- List.mapi make_port def.provides;
  g.next_port_index <- List.length g.gports;
  List.iter (fun p -> Hashtbl.replace g.gport_index (Port.name p).Port_name.uid p) g.gports;
  node.guardians <- g :: node.guardians;
  Hashtbl.replace node.gindex gid g;
  (match Hashtbl.find_opt w.guardians_by_def def.def_name with
  | Some gs -> gs := g :: !gs
  | None -> Hashtbl.replace w.guardians_by_def def.def_name (ref [ g ]));
  count w "guardian.created";
  tracef w "guardian" "created %s#%d at node %d" def.def_name gid node.node_id;
  let ctx = { cworld = w; cguardian = g } in
  ignore (spawn_in g ~name:(def.def_name ^ ".init") (fun () -> def.init ctx args));
  g

let create_guardian w ~at ~def_name ~args =
  let node =
    match Hashtbl.find_opt w.nodes at with
    | Some node -> node
    | None -> invalid_arg (Printf.sprintf "Runtime.create_guardian: unknown node %d" at)
  in
  let def =
    match find_def w def_name with
    | Some def -> def
    | None -> invalid_arg (Printf.sprintf "Runtime.create_guardian: unknown def %s" def_name)
  in
  create_guardian_at w node ~def ~args

let ctx_create_guardian c ~def_name ~args =
  let w = c.cworld in
  let def =
    match find_def w def_name with
    | Some def -> def
    | None -> invalid_arg (Printf.sprintf "Runtime.ctx_create_guardian: unknown def %s" def_name)
  in
  (* The paper's placement rule: "The node at which a guardian is created is
     the node where it will exist for its lifetime.  It must have been
     created by (a process in) a guardian at that node." *)
  create_guardian_at w c.cguardian.home ~def ~args

let kill_guardian_volatile g =
  List.iter Port.close g.gports;
  List.iter Process.kill g.gprocs;
  g.gprocs <- [];
  g.galive <- false

let self_destruct c =
  let g = c.cguardian in
  if g.galive then begin
    kill_guardian_volatile g;
    count c.cworld "guardian.self_destructed";
    tracef c.cworld "guardian" "self-destruct %s#%d" g.gdef.def_name g.gid
  end

(* ------------------------------------------------------------------ *)
(* Node failure and recovery                                           *)
(* ------------------------------------------------------------------ *)

let crash_node w node_id =
  match Hashtbl.find_opt w.nodes node_id with
  | None -> invalid_arg "Runtime.crash_node: unknown node"
  | Some node ->
      if node.up then begin
        node.up <- false;
        node.crash_count <- node.crash_count + 1;
        Network.clear_handler w.network node_id;
        List.iter
          (fun g ->
            let was_alive = g.galive in
            kill_guardian_volatile g;
            (* Only recoverable guardians will come back; their stable
               stores survive the crash, possibly with a torn tail. *)
            if was_alive then Store.crash g.gstore ~tear:(w.sys_rng, w.config.crash_tear_p) ())
          node.guardians;
        count w "node.crashed";
        tracef w "crash" "node %d crashed" node_id
      end

let restart_node w node_id =
  match Hashtbl.find_opt w.nodes node_id with
  | None -> invalid_arg "Runtime.restart_node: unknown node"
  | Some node ->
      if not node.up then begin
        node.up <- true;
        (* fresh processors: units held by processes the crash killed are
           not owed to anyone *)
        node.cpus <- Sync.semaphore w.engine w.config.processors_per_node;
        install_handler w node;
        count w "node.restarted";
        tracef w "restart" "node %d restarted" node_id;
        List.iter
          (fun g ->
            match g.gdef.recover with
            | None -> ()  (* forgotten, per §3.5 *)
            | Some recover_proc ->
                let replayed = Store.recover g.gstore in
                (* Only the birth ports (declared in the guardian header)
                   survive recovery; runtime-minted ports — conversation
                   state, like Figure 5's transaction ports — are forgotten
                   with the processes that owned them.  Stale senders get
                   failure("target port does not exist"). *)
                let births = List.length g.gdef.provides in
                g.gports <- List.filteri (fun i _ -> i < births) g.gports;
                Hashtbl.reset g.gport_index;
                List.iter
                  (fun p -> Hashtbl.replace g.gport_index (Port.name p).Port_name.uid p)
                  g.gports;
                List.iter Port.reopen g.gports;
                g.galive <- true;
                count w "guardian.recovered";
                tracef w "guardian" "recovered %s#%d (replayed %d records)" g.gdef.def_name
                  g.gid replayed;
                let ctx = { cworld = w; cguardian = g } in
                ignore
                  (spawn_in g ~name:(g.gdef.def_name ^ ".recover") (fun () -> recover_proc ctx)))
          node.guardians
      end

(* ------------------------------------------------------------------ *)
(* Send and receive                                                    *)
(* ------------------------------------------------------------------ *)

let send c ~to_ ?reply_to command args =
  let w = c.cworld in
  let g = c.cguardian in
  if not g.galive then Metrics.incr w.hot.m_send_dead
  else begin
    Metrics.incr w.hot.m_send_total;
    (* §3.4 step 1: encode the arguments; failures surface at the sender. *)
    (match Transmit.check_named w.registry (Value.list args) with
    | Ok () -> ()
    | Error reason -> raise (Send_failed reason));
    let msg = Message.make ?reply_to ~sent_at:(now w) command args in
    tracef w "send" "%s#%d -> %a: %a" g.gdef.def_name g.gid Port_name.pp to_ Message.pp msg;
    route w ~from_node:g.home.node_id ~target:to_ msg
  end

let receive c ?timeout ports =
  let g = c.cguardian in
  let owned p = Port.name p |> fun n -> n.Port_name.guardian = g.gid in
  if not (List.for_all owned ports) then
    invalid_arg "Runtime.receive: can only receive on this guardian's own ports";
  Port.receive c.cworld.engine ~ports ~timeout

let port c index =
  (* Look up by the port's own minted index, not list position: positions
     shift when a port is removed, indices never do. *)
  match
    List.find_opt (fun p -> (Port.name p).Port_name.index = index) c.cguardian.gports
  with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Runtime.port: guardian has no port %d" index)

let new_port c ?capacity ptype =
  let w = c.cworld in
  let g = c.cguardian in
  let capacity = Option.value capacity ~default:w.config.default_port_capacity in
  let index = g.next_port_index in
  g.next_port_index <- index + 1;
  let p = fresh_port w ~gid:g.gid ~node_id:g.home.node_id ~index ~ptype ~capacity in
  g.gports <- g.gports @ [ p ];
  Hashtbl.replace g.gport_index (Port.name p).Port_name.uid p;
  p

let remove_port c p =
  let g = c.cguardian in
  let uid = (Port.name p).Port_name.uid in
  Port.close p;
  Hashtbl.remove g.gport_index uid;
  g.gports <- List.filter (fun q -> not (Port_name.equal (Port.name q) (Port.name p))) g.gports

let spawn c ~name body = spawn_in c.cguardian ~name body
let sleep c d = Process.sleep c.cworld.engine d

let compute c d =
  let node = c.cguardian.home in
  Sync.acquire node.cpus;
  Process.sleep c.cworld.engine d;
  (* a killed process never reaches this release; the node's crash/restart
     resets the processor pool, matching reality *)
  Sync.release node.cpus

let idle_processors w node_id =
  match Hashtbl.find_opt w.nodes node_id with
  | None -> 0
  | Some node -> Sync.available node.cpus
let store c = c.cguardian.gstore

let seal_token c ~obj =
  Token.seal ~secret:c.cguardian.secret ~owner:c.cguardian.gid ~obj

let unseal_token c token =
  Token.unseal ~secret:c.cguardian.secret ~owner:c.cguardian.gid token

let sync_mutex c = Sync.mutex c.cworld.engine
let sync_condition c = Sync.condition c.cworld.engine
let sync_keyed_lock c = Sync.keyed_lock c.cworld.engine
