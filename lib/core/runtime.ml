open Dcp_wire
module Clock = Dcp_sim.Clock
module Engine = Dcp_sim.Engine
module Exec = Dcp_sim.Exec
module Metrics = Dcp_sim.Metrics
module Trace = Dcp_sim.Trace
module Network = Dcp_net.Network
module Topology = Dcp_net.Topology
module Store = Dcp_stable.Store
module Disk = Dcp_stable.Disk
module Rng = Dcp_rng.Rng

type node_id = int

type config = {
  codec : Codec.config;
  mtu : int;
  local_delay : Clock.time;
  crash_tear_p : float;
  default_port_capacity : int;
  processors_per_node : int;
  disk : Disk.spec option;
  checkpoint_every : int option;
}

let default_config =
  {
    codec = Codec.default_config;
    mtu = 1024;
    local_delay = Clock.us 5;
    crash_tear_p = 0.3;
    default_port_capacity = 64;
    processors_per_node = 8;
    disk = None;
    checkpoint_every = None;
  }

(* Metric handles resolved once at world creation so the per-message path
   (send -> route -> deliver) never does a string-keyed registry lookup. *)
type hot_metrics = {
  m_send_total : Metrics.counter;
  m_send_local : Metrics.counter;
  m_send_remote : Metrics.counter;
  m_send_dead : Metrics.counter;
  m_deliver_ok : Metrics.counter;
  m_deliver_discarded : Metrics.counter;
  m_failure_sent : Metrics.counter;
  m_deliver_unknown_node : Metrics.counter;
  m_deliver_node_down : Metrics.counter;
  m_deliver_malformed : Metrics.counter;
  m_latency_us : Metrics.histogram;
}

(* ------------------------------------------------------------------ *)
(* Shards                                                              *)
(*                                                                     *)
(* A world is partitioned into [shard_count] shards.  Each shard owns a *)
(* complete execution stack — engine, network instance, metrics, trace, *)
(* RNG streams, id counters — and hosts a subset of the nodes (node i   *)
(* of the topology lives on shard i mod N, so placement is a pure       *)
(* function of (topology, shard_count)).  A guardian lives on its home  *)
(* node's shard for life; gids are strided (shard_id + k*N), so         *)
(* gid mod N recovers the shard.                                        *)
(*                                                                     *)
(* Single-writer discipline: during an epoch, a shard's state is        *)
(* touched only by the domain running that shard.  The one exception    *)
(* is the outbox: a message whose destination node lives on another     *)
(* shard is simulated on the SOURCE shard's network (delay, loss,       *)
(* fragmentation, all from the source shard's net RNG) and, at          *)
(* reassembly, appended to the source shard's outbox for the            *)
(* destination shard instead of being delivered.  Outboxes are drained  *)
(* only at epoch barriers, by the coordinating domain, while every      *)
(* shard is parked — the sealed exchange.  Injection order is canonical *)
(* (source shard ascending, then append order), so destination-engine   *)
(* sequence numbers — and therefore all tie-breaks — are independent of *)
(* how the epoch itself was executed.  That is the whole bit-identity   *)
(* argument: sequential and domain-parallel execution of an epoch       *)
(* perform identical per-shard work on disjoint state, and the only     *)
(* cross-shard flow is a deterministic merge at the barrier.            *)
(*                                                                     *)
(* [shards = 1] short-circuits every barrier path: one shard, no        *)
(* forwarders, no epochs — exactly the pre-shard runtime, reproducing   *)
(* its traces bit for bit.                                              *)
(* ------------------------------------------------------------------ *)

type world = {
  config : config;
  registry : Transmit.registry;
  shard_count : int;
  epoch : Clock.time;  (** cross-shard exchange window (barrier spacing) *)
  parallel : bool;  (** run epochs on [shard_count] domains *)
  shards : shard array;
  nodes : (node_id, node) Hashtbl.t;
  defs : (string, def) Hashtbl.t;
  mutable barrier : Clock.time;  (** last epoch boundary; shard clocks agree here *)
}

and shard = {
  shard_id : int;
  sengine : Engine.t;
  snetwork : Network.t;  (** full topology; foreign nodes forward to outboxes *)
  smetrics : Metrics.registry;
  shot : hot_metrics;
  sencoder : Codec.encoder;  (** scratch-buffer encoder for this shard's send path *)
  strace : Trace.t;
  ssys_rng : Rng.t;  (** secrets, crash tears *)
  sworkload_rng : Rng.t;  (** handed to user workload generators *)
  sguardians_by_def : (string, guardian list ref) Hashtbl.t;  (** newest first *)
  mutable snext_guardian_id : int;  (** strided: shard_id + k * shard_count *)
  mutable snext_port_uid : int;  (** strided *)
  mutable snext_mint_id : int;  (** strided; deterministic ids for primitives *)
  outboxes : (Clock.time * node_id * string) list ref array;
      (** per destination shard, newest first; drained at barriers *)
}

and node = {
  node_id : node_id;
  world : world;
  shard : shard;
  mutable up : bool;
  mutable guardians : guardian list;  (** newest first *)
  gindex : (int, guardian) Hashtbl.t;  (** gid -> guardian, for delivery *)
  mutable crash_count : int;
  mutable cpus : Sync.semaphore;  (** the node's processors (§1.1) *)
}

and guardian = {
  gid : int;
  gdef : def;
  home : node;
  secret : int64;
  gstore : Store.t;
  mutable galive : bool;
  mutable gports : Port.t list;  (** creation order *)
  gport_index : (int, Port.t) Hashtbl.t;  (** port uid -> port, for delivery *)
  mutable next_port_index : int;
      (** monotonic: indices are never reused, even after {!remove_port} *)
  mutable gprocs : Process.t list;
}

and def = {
  def_name : string;
  provides : (Vtype.port_type * int) list;
  init : ctx -> Value.t list -> unit;
  recover : (ctx -> unit) option;
}

and ctx = { cworld : world; cguardian : guardian }

let shard0 w = w.shards.(0)
let engine w = (shard0 w).sengine
let network w = (shard0 w).snetwork
let now w = Engine.now (shard0 w).sengine

let metrics w =
  if w.shard_count = 1 then (shard0 w).smetrics
  else Metrics.merge (Array.to_list (Array.map (fun s -> s.smetrics) w.shards))

let trace w = (shard0 w).strace
let registry w = w.registry
let world_rng w = (shard0 w).sworkload_rng

let shard_count w = w.shard_count
let epoch_length w = w.epoch

let events_executed w =
  Array.fold_left (fun acc s -> acc + Engine.events_executed s.sengine) 0 w.shards

let network_stats w =
  Array.fold_left
    (fun acc s ->
      let st = Network.stats s.snetwork in
      {
        Network.messages_sent = acc.Network.messages_sent + st.Network.messages_sent;
        messages_delivered = acc.Network.messages_delivered + st.Network.messages_delivered;
        fragments_sent = acc.Network.fragments_sent + st.Network.fragments_sent;
        fragments_lost = acc.Network.fragments_lost + st.Network.fragments_lost;
        fragments_corrupted = acc.Network.fragments_corrupted + st.Network.fragments_corrupted;
        fragments_duplicated =
          acc.Network.fragments_duplicated + st.Network.fragments_duplicated;
        partition_drops = acc.Network.partition_drops + st.Network.partition_drops;
        bytes_sent = acc.Network.bytes_sent + st.Network.bytes_sent;
      })
    {
      Network.messages_sent = 0;
      messages_delivered = 0;
      fragments_sent = 0;
      fragments_lost = 0;
      fragments_corrupted = 0;
      fragments_duplicated = 0;
      partition_drops = 0;
      bytes_sent = 0;
    }
    w.shards

let node_shard w node_id =
  match Hashtbl.find_opt w.nodes node_id with
  | None -> invalid_arg "Runtime.node_shard: unknown node"
  | Some node -> node.shard.shard_id

let scount sh name = Metrics.incr (Metrics.counter sh.smetrics name)
let stracef sh category fmt = Trace.recordf sh.strace ~at:(Engine.now sh.sengine) ~category fmt

let register_def w def =
  if Hashtbl.mem w.defs def.def_name then
    invalid_arg (Printf.sprintf "Runtime.register_def: %s already registered" def.def_name);
  Hashtbl.replace w.defs def.def_name def

let find_def w name = Hashtbl.find_opt w.defs name

let guardian_id g = g.gid
let guardian_def_name g = g.gdef.def_name
let guardian_node g = g.home.node_id
let guardian_alive g = g.galive
let guardian_ports g = List.map Port.name g.gports
let guardians_at w node_id =
  match Hashtbl.find_opt w.nodes node_id with
  | None -> []
  | Some node -> List.rev node.guardians

let guardian_store g = g.gstore

(* Per-shard lists are newest-first; creation order is ascending gid, so
   the world-level view is the gid-sorted merge (for one shard, plain
   reversal — the pre-shard behaviour). *)
let find_guardians w ~def_name =
  let of_shard sh =
    match Hashtbl.find_opt sh.sguardians_by_def def_name with
    | None -> []
    | Some gs -> List.rev !gs
  in
  if w.shard_count = 1 then of_shard (shard0 w)
  else
    Array.to_list w.shards
    |> List.concat_map of_shard
    |> List.sort (fun a b -> Int.compare a.gid b.gid)

(* World-level view in creation (gid) order, like [find_guardians]. *)
let all_guardians w =
  Hashtbl.fold (fun _ node acc -> List.rev_append node.guardians acc) w.nodes []
  |> List.sort (fun a b -> Int.compare a.gid b.gid)

let node_up w node_id =
  match Hashtbl.find_opt w.nodes node_id with None -> false | Some n -> n.up

let crash_count w node_id =
  match Hashtbl.find_opt w.nodes node_id with None -> 0 | Some n -> n.crash_count

let ctx_world c = c.cworld
let ctx_guardian c = c.cguardian
let ctx_node c = c.cguardian.home.node_id
let ctx_shard c = c.cguardian.home.shard
let ctx_now c = Engine.now (ctx_shard c).sengine
let ctx_engine c = (ctx_shard c).sengine
let ctx_metrics c = (ctx_shard c).smetrics
let ctx_rng c = (ctx_shard c).sworkload_rng
let ctx_shards c = c.cworld.shard_count

let ctx_mint_id c =
  let sh = ctx_shard c in
  let id = sh.snext_mint_id in
  sh.snext_mint_id <- id + c.cworld.shard_count;
  id

exception Send_failed of string

(* ------------------------------------------------------------------ *)
(* Delivery                                                            *)
(* ------------------------------------------------------------------ *)

let find_port_in g target =
  match Hashtbl.find_opt g.gport_index target.Port_name.uid with
  | Some p when Port_name.equal (Port.name p) target -> Some p
  | Some _ | None -> None

let find_guardian_in node gid = Hashtbl.find_opt node.gindex gid

(* Forward reference so [reject] can send system failure messages through
   the normal routing path without mutual module recursion. *)
let route_ref : (world -> from:node -> target:Port_name.t -> Message.t -> unit) ref =
  ref (fun _ ~from:_ ~target:_ _ -> assert false)

(* [reject] runs on the rejecting node's shard; the failure message
   originates there. *)
let reject w node msg reason =
  let sh = node.shard in
  Metrics.incr sh.shot.m_deliver_discarded;
  stracef sh "discard" "%s: %a" reason Message.pp msg;
  match msg.Message.reply_to with
  | Some reply_port when not (Message.is_failure msg) ->
      Metrics.incr sh.shot.m_failure_sent;
      let failure = Message.failure ~reason ~sent_at:(Engine.now sh.sengine) in
      !route_ref w ~from:node ~target:reply_port failure
  | Some _ | None -> ()

let deliver_message w node target msg =
  let sh = node.shard in
  match find_guardian_in node target.Port_name.guardian with
  | None -> reject w node msg "target guardian does not exist"
  | Some g when not g.galive -> reject w node msg "target guardian does not exist"
  | Some g -> (
      match find_port_in g target with
      | None -> reject w node msg "target port does not exist"
      | Some port -> (
          match Vtype.check_message (Port.ptype port) ~command:msg.Message.command msg.Message.args with
          | Error reason -> reject w node msg ("message rejected: " ^ reason)
          | Ok () -> (
              match Port.enqueue port msg with
              | `Delivered | `Queued ->
                  Metrics.incr sh.shot.m_deliver_ok;
                  Metrics.observe sh.shot.m_latency_us
                    (Clock.to_float_us (Clock.diff (Engine.now sh.sengine) msg.Message.sent_at))
              | `Full -> reject w node msg "no room at target port"
              | `Closed -> reject w node msg "target port does not exist")))

(* [sh] is the shard whose engine is executing this delivery — the
   destination node's shard, except for the unknown-node tally. *)
let deliver_body w sh dst_node_id body =
  match Hashtbl.find_opt w.nodes dst_node_id with
  | None -> Metrics.incr sh.shot.m_deliver_unknown_node
  | Some node ->
      if not node.up then Metrics.incr node.shard.shot.m_deliver_node_down
      else (
        match Codec.decode ~config:w.config.codec body with
        | Error _ -> Metrics.incr node.shard.shot.m_deliver_malformed
        | Ok env -> (
            match Message.of_envelope env with
            | Error _ -> Metrics.incr node.shard.shot.m_deliver_malformed
            | Ok (target, msg) -> deliver_message w node target msg))

(* Route an already-composed message from a node to a target port,
   encoding it on the way out (bounds checks apply to system messages
   too).  Everything here is source-shard state: the encoder, the engine
   the local-delivery timer lands on, and the network the remote path
   uses.  If the destination node lives on another shard, the source
   shard's network still simulates the full link (delay, loss,
   fragmentation) — the destination handler is a forwarder that parks the
   reassembled body in the outbox for the barrier exchange. *)
let route w ~from ~target msg =
  let sh = from.shard in
  let env = Message.envelope ~target msg in
  match Codec.encode_with sh.sencoder env with
  | Error e -> raise (Send_failed (Format.asprintf "%a" Codec.pp_error e))
  | Ok body ->
      if target.Port_name.node = from.node_id then begin
        Metrics.incr sh.shot.m_send_local;
        ignore
          (Engine.schedule_after sh.sengine ~delay:w.config.local_delay (fun () ->
               deliver_body w sh target.Port_name.node body))
      end
      else begin
        Metrics.incr sh.shot.m_send_remote;
        Network.send sh.snetwork ~src:from.node_id ~dst:target.Port_name.node body
      end

let () = route_ref := route

(* ------------------------------------------------------------------ *)
(* World setup                                                         *)
(* ------------------------------------------------------------------ *)

let install_handler w node =
  Network.set_handler node.shard.snetwork node.node_id (fun ~src:_ body ->
      deliver_body w node.shard node.node_id body)

(* On every OTHER shard, this node's handler forwards reassembled bodies
   into that shard's outbox, stamped with the source shard's arrival time.
   Forwarders are installed once and never cleared: whether the
   destination node is up is its own shard's business, checked by
   [deliver_body] after the exchange. *)
let install_forwarders w node =
  Array.iter
    (fun src_shard ->
      if src_shard != node.shard then
        let out = src_shard.outboxes.(node.shard.shard_id) in
        Network.set_handler src_shard.snetwork node.node_id (fun ~src:_ body ->
            out := (Engine.now src_shard.sengine, node.node_id, body) :: !out))
    w.shards

let default_epoch = Clock.ms 1

let create_world ~seed ~topology ?(config = default_config) ?(shards = 1)
    ?(epoch = default_epoch) ?(parallel = false) () =
  if shards < 1 then invalid_arg "Runtime.create_world: shards must be positive";
  if Clock.compare epoch Clock.zero <= 0 then
    invalid_arg "Runtime.create_world: epoch must be positive";
  let root = Rng.create ~seed in
  let hot_of metrics =
    {
      m_send_total = Metrics.counter metrics "send.total";
      m_send_local = Metrics.counter metrics "send.local";
      m_send_remote = Metrics.counter metrics "send.remote";
      m_send_dead = Metrics.counter metrics "send.dead_guardian";
      m_deliver_ok = Metrics.counter metrics "deliver.ok";
      m_deliver_discarded = Metrics.counter metrics "deliver.discarded";
      m_failure_sent = Metrics.counter metrics "failure.sent";
      m_deliver_unknown_node = Metrics.counter metrics "deliver.unknown_node";
      m_deliver_node_down = Metrics.counter metrics "deliver.node_down";
      m_deliver_malformed = Metrics.counter metrics "deliver.malformed";
      m_latency_us = Metrics.histogram metrics "latency.message_us";
    }
  in
  (* Shard RNG streams are split from the root in shard order, three per
     shard — for one shard exactly the historical net/sys/workload split,
     so seeds reproduce pre-shard streams bit for bit.  The explicit
     recursion pins the evaluation (and therefore split) order. *)
  let make_shard sid =
    let net_rng = Rng.split root in
    let sys_rng = Rng.split root in
    let workload_rng = Rng.split root in
    let sengine = Engine.create () in
    let snetwork = Network.create ~engine:sengine ~rng:net_rng ~topology ~mtu:config.mtu () in
    let smetrics = Metrics.registry () in
    {
      shard_id = sid;
      sengine;
      snetwork;
      smetrics;
      shot = hot_of smetrics;
      sencoder = Codec.encoder ~config:config.codec ();
      strace = Trace.create ();
      ssys_rng = sys_rng;
      sworkload_rng = workload_rng;
      sguardians_by_def = Hashtbl.create 16;
      snext_guardian_id = sid;
      snext_port_uid = sid;
      snext_mint_id = sid;
      outboxes = Array.init shards (fun _ -> ref []);
    }
  in
  let rec make_shards sid acc =
    if sid = shards then Array.of_list (List.rev acc)
    else make_shards (sid + 1) (make_shard sid :: acc)
  in
  let w =
    {
      config;
      registry = Transmit.registry ();
      shard_count = shards;
      epoch;
      parallel;
      shards = make_shards 0 [];
      nodes = Hashtbl.create 16;
      defs = Hashtbl.create 16;
      barrier = Clock.zero;
    }
  in
  List.iteri
    (fun i node_id ->
      let shard = w.shards.(i mod shards) in
      let node =
        {
          node_id;
          world = w;
          shard;
          up = true;
          guardians = [];
          gindex = Hashtbl.create 16;
          crash_count = 0;
          cpus = Sync.semaphore shard.sengine config.processors_per_node;
        }
      in
      Hashtbl.replace w.nodes node_id node;
      install_handler w node;
      install_forwarders w node)
    (Topology.nodes topology);
  w

(* ------------------------------------------------------------------ *)
(* Epoch barriers                                                      *)
(* ------------------------------------------------------------------ *)

(* Drain every outbox into the destination engines.  Runs only on the
   coordinating domain, while no shard is executing.  The scan is source
   shard ascending, then chronological append order — the canonical order
   that makes destination sequence numbers (and so all same-time
   tie-breaks) independent of execution mode.  Destination clocks sit at
   the barrier, so [Engine.schedule] clamps each arrival into the next
   epoch: cross-shard latency is rounded up to the barrier, which is the
   epoch-barrier equivalence at work. *)
let exchange w =
  let injected = ref 0 in
  Array.iter
    (fun src ->
      Array.iteri
        (fun dst_id out ->
          match !out with
          | [] -> ()
          | items ->
              out := [];
              let dst = w.shards.(dst_id) in
              List.iter
                (fun (at, nid, body) ->
                  incr injected;
                  ignore
                    (Engine.schedule dst.sengine ~at (fun () -> deliver_body w dst nid body)))
                (List.rev items))
        src.outboxes)
    w.shards;
  !injected

(* One barrier-to-barrier window: run every shard to [limit] (on domains
   when [parallel]), then exchange.  [run_until] parks each clock exactly
   at [limit], so the shards agree on the barrier time. *)
let run_epoch w pool limit =
  (match pool with
  | Some pool -> Exec.round pool (fun i -> Engine.run_until w.shards.(i).sengine limit)
  | None -> Array.iter (fun s -> Engine.run_until s.sengine limit) w.shards);
  let _ = exchange w in
  w.barrier <- limit

let with_optional_pool w f =
  if w.parallel && w.shard_count > 1 then Exec.with_pool ~shards:w.shard_count (fun p -> f (Some p))
  else f None

(* Earliest lower bound on pending work across shards, for skipping empty
   epoch windows during drains. *)
let earliest_event w =
  Array.fold_left
    (fun acc s ->
      match Engine.next_time s.sengine with
      | None -> acc
      | Some t -> ( match acc with None -> Some t | Some u -> Some (Clock.compare t u < 0 |> fun lt -> if lt then t else u)))
    None w.shards

let any_pending w = Array.exists (fun s -> Engine.pending s.sengine > 0) w.shards

(* Next barrier: a whole number of epochs past the current one, far enough
   to reach [t]. *)
let next_barrier w t =
  let gap = Clock.diff t w.barrier in
  let steps = Int.max 1 ((gap + w.epoch - 1) / w.epoch) in
  Clock.add w.barrier (steps * w.epoch)

let run_for w d =
  if w.shard_count = 1 then Engine.run_for (shard0 w).sengine d
  else begin
    let target = Clock.add w.barrier d in
    with_optional_pool w (fun pool ->
        while Clock.compare w.barrier target < 0 do
          let limit = next_barrier w (Clock.add w.barrier 1) in
          let limit = if Clock.compare limit target > 0 then target else limit in
          run_epoch w pool limit
        done)
  end

let run w =
  if w.shard_count = 1 then Engine.run (shard0 w).sengine
  else
    with_optional_pool w (fun pool ->
        let rec drain () =
          if any_pending w then begin
            (match earliest_event w with
            | None -> ()
            | Some t -> run_epoch w pool (next_barrier w t));
            drain ()
          end
        in
        drain ())

(* ------------------------------------------------------------------ *)
(* Guardian lifecycle                                                  *)
(* ------------------------------------------------------------------ *)

let fresh_port w node ~gid ~index ~ptype ~capacity =
  let sh = node.shard in
  let uid = sh.snext_port_uid in
  sh.snext_port_uid <- uid + w.shard_count;
  let name = Port_name.make ~node:node.node_id ~guardian:gid ~index ~uid in
  Port.create ~name ~ptype ~capacity

let spawn_in g ~name body =
  let p = Process.spawn g.home.shard.sengine ~name body in
  g.gprocs <- p :: g.gprocs;
  p

let create_guardian_at w node ~def ~args =
  if not node.up then invalid_arg "Runtime.create_guardian: node is down";
  let sh = node.shard in
  let gid = sh.snext_guardian_id in
  sh.snext_guardian_id <- gid + w.shard_count;
  (* Field order matters for the system stream: the secret draw comes
     first (as it always has), and the disk split happens only when a disk
     spec is present — fault-free worlds consume exactly the legacy draw
     sequence, keeping pinned fingerprints valid. *)
  let secret = Rng.bits64 sh.ssys_rng in
  let gstore =
    match w.config.disk with
    | None -> Store.create ?checkpoint_every:w.config.checkpoint_every ()
    | Some spec ->
        let store =
          Store.create ~disk:(spec, Rng.split sh.ssys_rng)
            ?checkpoint_every:w.config.checkpoint_every ()
        in
        (* A stall occupies the appending process for simulated time, like
           any other blocking device wait. *)
        Store.set_stall_handler store (fun stall_ms ->
            Process.sleep sh.sengine (Clock.ms stall_ms));
        store
  in
  let g =
    {
      gid;
      gdef = def;
      home = node;
      secret;
      gstore;
      galive = true;
      gports = [];
      gport_index = Hashtbl.create 8;
      next_port_index = 0;
      gprocs = [];
    }
  in
  let make_port index (ptype, capacity) = fresh_port w node ~gid ~index ~ptype ~capacity in
  g.gports <- List.mapi make_port def.provides;
  g.next_port_index <- List.length g.gports;
  List.iter (fun p -> Hashtbl.replace g.gport_index (Port.name p).Port_name.uid p) g.gports;
  node.guardians <- g :: node.guardians;
  Hashtbl.replace node.gindex gid g;
  (match Hashtbl.find_opt sh.sguardians_by_def def.def_name with
  | Some gs -> gs := g :: !gs
  | None -> Hashtbl.replace sh.sguardians_by_def def.def_name (ref [ g ]));
  scount sh "guardian.created";
  stracef sh "guardian" "created %s#%d at node %d" def.def_name gid node.node_id;
  let ctx = { cworld = w; cguardian = g } in
  ignore (spawn_in g ~name:(def.def_name ^ ".init") (fun () -> def.init ctx args));
  g

let create_guardian w ~at ~def_name ~args =
  let node =
    match Hashtbl.find_opt w.nodes at with
    | Some node -> node
    | None -> invalid_arg (Printf.sprintf "Runtime.create_guardian: unknown node %d" at)
  in
  let def =
    match find_def w def_name with
    | Some def -> def
    | None -> invalid_arg (Printf.sprintf "Runtime.create_guardian: unknown def %s" def_name)
  in
  create_guardian_at w node ~def ~args

let ctx_create_guardian c ~def_name ~args =
  let w = c.cworld in
  let def =
    match find_def w def_name with
    | Some def -> def
    | None -> invalid_arg (Printf.sprintf "Runtime.ctx_create_guardian: unknown def %s" def_name)
  in
  (* The paper's placement rule: "The node at which a guardian is created is
     the node where it will exist for its lifetime.  It must have been
     created by (a process in) a guardian at that node."  Affinity falls
     out: the child shares the parent's node, hence its shard. *)
  create_guardian_at w c.cguardian.home ~def ~args

let kill_guardian_volatile g =
  List.iter Port.close g.gports;
  List.iter Process.kill g.gprocs;
  g.gprocs <- [];
  g.galive <- false

let self_destruct c =
  let g = c.cguardian in
  if g.galive then begin
    kill_guardian_volatile g;
    scount g.home.shard "guardian.self_destructed";
    stracef g.home.shard "guardian" "self-destruct %s#%d" g.gdef.def_name g.gid
  end

(* ------------------------------------------------------------------ *)
(* Node failure and recovery                                           *)
(* ------------------------------------------------------------------ *)

(* Crash and restart touch only the node's own shard (its network
   handler, its engine's semaphore, its guardians' state), so chaos
   schedules them as events on the victim's shard.  Forwarders on other
   shards stay installed — in-flight cross-shard traffic still arrives in
   the outbox and is discarded by [deliver_body] if the node is down at
   injection time. *)
let crash_node w node_id =
  match Hashtbl.find_opt w.nodes node_id with
  | None -> invalid_arg "Runtime.crash_node: unknown node"
  | Some node ->
      if node.up then begin
        let sh = node.shard in
        node.up <- false;
        node.crash_count <- node.crash_count + 1;
        Network.clear_handler sh.snetwork node_id;
        List.iter
          (fun g ->
            let was_alive = g.galive in
            kill_guardian_volatile g;
            (* Only recoverable guardians will come back; their stable
               stores survive the crash, possibly with a torn tail. *)
            if was_alive then Store.crash g.gstore ~tear:(sh.ssys_rng, w.config.crash_tear_p) ())
          node.guardians;
        scount sh "node.crashed";
        stracef sh "crash" "node %d crashed" node_id
      end

let restart_node w node_id =
  match Hashtbl.find_opt w.nodes node_id with
  | None -> invalid_arg "Runtime.restart_node: unknown node"
  | Some node ->
      if not node.up then begin
        let sh = node.shard in
        node.up <- true;
        (* fresh processors: units held by processes the crash killed are
           not owed to anyone *)
        node.cpus <- Sync.semaphore sh.sengine w.config.processors_per_node;
        install_handler w node;
        scount sh "node.restarted";
        stracef sh "restart" "node %d restarted" node_id;
        List.iter
          (fun g ->
            match g.gdef.recover with
            | None -> ()  (* forgotten, per §3.5 *)
            | Some recover_proc ->
                let report = Store.recover_report g.gstore in
                let replayed = report.Store.replayed in
                if
                  report.Store.quarantined > 0 || report.Store.salvaged > 0
                  || report.Store.checkpoint_fallbacks > 0
                then begin
                  let bump name n =
                    if n > 0 then Metrics.add (Metrics.counter sh.smetrics name) n
                  in
                  bump "stable.corrupt" report.Store.quarantined;
                  bump "stable.salvaged" report.Store.salvaged;
                  bump "stable.ckpt_fallback" report.Store.checkpoint_fallbacks;
                  stracef sh "stable"
                    "guardian %s#%d recovery damage: %d quarantined, %d salvaged, %d checkpoint fallbacks"
                    g.gdef.def_name g.gid report.Store.quarantined report.Store.salvaged
                    report.Store.checkpoint_fallbacks
                end;
                if report.Store.dropped_unflushed > 0 then
                  Metrics.add
                    (Metrics.counter sh.smetrics "stable.dropped_unflushed")
                    report.Store.dropped_unflushed;
                (* Only the birth ports (declared in the guardian header)
                   survive recovery; runtime-minted ports — conversation
                   state, like Figure 5's transaction ports — are forgotten
                   with the processes that owned them.  Stale senders get
                   failure("target port does not exist"). *)
                let births = List.length g.gdef.provides in
                g.gports <- List.filteri (fun i _ -> i < births) g.gports;
                Hashtbl.reset g.gport_index;
                List.iter
                  (fun p -> Hashtbl.replace g.gport_index (Port.name p).Port_name.uid p)
                  g.gports;
                List.iter Port.reopen g.gports;
                g.galive <- true;
                scount sh "guardian.recovered";
                stracef sh "guardian" "recovered %s#%d (replayed %d records)" g.gdef.def_name
                  g.gid replayed;
                let ctx = { cworld = w; cguardian = g } in
                ignore
                  (spawn_in g ~name:(g.gdef.def_name ^ ".recover") (fun () -> recover_proc ctx)))
          node.guardians
      end

(* Host-side scheduling pinned to a node's shard, for fault injectors:
   the callback runs on the shard that owns the node, so it may touch
   that node's state even in a parallel run. *)
let schedule_at w ~node ~at f =
  match Hashtbl.find_opt w.nodes node with
  | None -> invalid_arg "Runtime.schedule_at: unknown node"
  | Some n -> ignore (Engine.schedule n.shard.sengine ~at (fun () -> f ()))

(* ------------------------------------------------------------------ *)
(* Send and receive                                                    *)
(* ------------------------------------------------------------------ *)

let send c ~to_ ?reply_to command args =
  let w = c.cworld in
  let g = c.cguardian in
  let sh = g.home.shard in
  if not g.galive then Metrics.incr sh.shot.m_send_dead
  else begin
    Metrics.incr sh.shot.m_send_total;
    (* §3.4 step 1: encode the arguments; failures surface at the sender. *)
    (match Transmit.check_named w.registry (Value.list args) with
    | Ok () -> ()
    | Error reason -> raise (Send_failed reason));
    let msg = Message.make ?reply_to ~sent_at:(Engine.now sh.sengine) command args in
    stracef sh "send" "%s#%d -> %a: %a" g.gdef.def_name g.gid Port_name.pp to_ Message.pp msg;
    (* Externalization barrier (write-ahead discipline): everything this
       guardian logged is flushed before any message leaves it, so a later
       crash can tear or drop only state the rest of the world has never
       observed. *)
    Store.flush g.gstore;
    route w ~from:g.home ~target:to_ msg
  end

let receive c ?timeout ports =
  let g = c.cguardian in
  let owned p = Port.name p |> fun n -> n.Port_name.guardian = g.gid in
  if not (List.for_all owned ports) then
    invalid_arg "Runtime.receive: can only receive on this guardian's own ports";
  (* Quiescence barrier, the dual of the send-side flush: a guardian going
     back to waiting for work has durably committed everything it did —
     including bootstrap state written before it ever sent a message.  The
     disk-fault plane may therefore tear or drop only writes made {e
     mid-request}, which no other party (or oracle model) has observed. *)
  Store.flush g.gstore;
  Port.receive g.home.shard.sengine ~ports ~timeout

let port c index =
  (* Look up by the port's own minted index, not list position: positions
     shift when a port is removed, indices never do. *)
  match
    List.find_opt (fun p -> (Port.name p).Port_name.index = index) c.cguardian.gports
  with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Runtime.port: guardian has no port %d" index)

let new_port c ?capacity ptype =
  let w = c.cworld in
  let g = c.cguardian in
  let capacity = Option.value capacity ~default:w.config.default_port_capacity in
  let index = g.next_port_index in
  g.next_port_index <- index + 1;
  let p = fresh_port w g.home ~gid:g.gid ~index ~ptype ~capacity in
  g.gports <- g.gports @ [ p ];
  Hashtbl.replace g.gport_index (Port.name p).Port_name.uid p;
  p

let remove_port c p =
  let g = c.cguardian in
  let uid = (Port.name p).Port_name.uid in
  Port.close p;
  Hashtbl.remove g.gport_index uid;
  g.gports <- List.filter (fun q -> not (Port_name.equal (Port.name q) (Port.name p))) g.gports

let spawn c ~name body = spawn_in c.cguardian ~name body
let sleep c d = Process.sleep (ctx_engine c) d

let compute c d =
  let node = c.cguardian.home in
  Sync.acquire node.cpus;
  Process.sleep node.shard.sengine d;
  (* a killed process never reaches this release; the node's crash/restart
     resets the processor pool, matching reality *)
  Sync.release node.cpus

let idle_processors w node_id =
  match Hashtbl.find_opt w.nodes node_id with
  | None -> 0
  | Some node -> Sync.available node.cpus
let store c = c.cguardian.gstore

let seal_token c ~obj =
  Token.seal ~secret:c.cguardian.secret ~owner:c.cguardian.gid ~obj

let unseal_token c token =
  Token.unseal ~secret:c.cguardian.secret ~owner:c.cguardian.gid token

let sync_mutex c = Sync.mutex (ctx_engine c)
let sync_condition c = Sync.condition (ctx_engine c)
let sync_keyed_lock c = Sync.keyed_lock (ctx_engine c)
