module Engine = Dcp_sim.Engine

type state = Created | Running | Blocked | Finished | Dead

type t = {
  pid : int;
  name : string;
  mutable state : state;
  mutable failure : exn option;
}

type _ Effect.t += Suspend : (('a -> unit) -> unit) -> 'a Effect.t

(* Pids are unique across the world but their allocation order carries no
   meaning (they appear only in log lines and accessors, never in message
   bytes), so a cross-domain counter is safe here. *)
let next_pid = Dcp_sim.Exec.counter 0

(* The current-process register is per-domain: each shard's engine resumes
   its own fibers, and shards must not observe each other's scheduler
   state. *)
let current : t option Dcp_sim.Exec.domain_local =
  Dcp_sim.Exec.domain_local (fun () -> None)

let self () = Dcp_sim.Exec.local_get current

let pid t = t.pid
let name t = t.name
let state t = t.state
let alive t = match t.state with Created | Running | Blocked -> true | Finished | Dead -> false
let failure t = t.failure

let kill t = if alive t then t.state <- Dead

(* Run [f] with [p] recorded as the current process, restoring the previous
   current process afterwards — resumes can nest (an unlock in process A can
   synchronously resume process B). *)
let with_current p f =
  let previous = Dcp_sim.Exec.local_get current in
  Dcp_sim.Exec.local_set current (Some p);
  Fun.protect ~finally:(fun () -> Dcp_sim.Exec.local_set current previous) f

let spawn engine ~name body =
  let p = { pid = Dcp_sim.Exec.fetch_incr next_pid; name; state = Created; failure = None } in
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> if p.state <> Dead then p.state <- Finished);
      exnc =
        (fun e ->
          if p.state <> Dead then begin
            p.state <- Finished;
            p.failure <- Some e;
            Logs.warn (fun m ->
                m "process %s#%d died with exception %s" p.name p.pid (Printexc.to_string e))
          end);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  if p.state = Dead then ()
                    (* killed while running: stop at this suspension point;
                       the continuation is dropped *)
                  else begin
                  p.state <- Blocked;
                  let resumed = ref false in
                  let resume v =
                    if not !resumed then begin
                      resumed := true;
                      if p.state = Blocked then begin
                        p.state <- Running;
                        with_current p (fun () -> Effect.Deep.continue k v)
                      end
                      (* a killed process's continuation is dropped; the
                         fiber is reclaimed by the GC *)
                    end
                  in
                  register resume
                  end)
          | _ -> None);
    }
  in
  let start () =
    if p.state = Created then begin
      p.state <- Running;
      with_current p (fun () -> Effect.Deep.match_with body () handler)
    end
  in
  ignore (Engine.schedule_after engine ~delay:0 start);
  p

let suspend register = Effect.perform (Suspend register)

let sleep engine d =
  suspend (fun resume -> ignore (Engine.schedule_after engine ~delay:d (fun () -> resume ())))

let yield engine = sleep engine 0
