(** The guardian runtime: the paper's abstract machine.

    A {!world} holds the simulation engine, the network, and a set of nodes;
    each node hosts guardians; each guardian owns ports, processes, a
    private heap (ordinary OCaml state captured by its closures), a token
    seal, and a stable store.  The runtime implements:

    - {b no-wait send} (§3.4): [send] returns once the message is composed
      and scheduled; encode errors surface at the sender, nothing else does.
    - {b receive with timeout} (§3.4) over prioritised port lists.
    - {b system failure messages}: a discarded message that carried a reply
      port produces [failure(reason)] on that port.
    - {b guardian creation at the creator's node} (§2.1/§3.2): in-model
      creation is only possible through a ctx, pinning the new guardian to
      the creating guardian's node.  Bootstrap placement (standing in for a
      node owner installing software) uses {!create_guardian}.
    - {b node crash and per-guardian recovery} (§2.2): a crash kills every
      process and port buffer on the node and tears volatile state away;
      guardians whose definition supplies a [recover] procedure come back
      when the node restarts, with their stable store recovered and their
      port names intact.  Guardians without one stay dead — the paper's
      "forget rather than resume" choice for transaction processes.

    {b Sharding.}  A world may be partitioned into [shards] shards, each
    owning a complete execution stack (engine, network, metrics, RNG
    streams) and a subset of the nodes (node [i] of the topology lives on
    shard [i mod shards]; guardians inherit their home node's shard for
    life).  Intra-shard messages are delivered locally with no
    synchronization; cross-shard messages are simulated on the source
    shard's network and buffered into per-(src,dst) outboxes, exchanged
    only at epoch barriers and injected into the destination engine in
    canonical order (source shard ascending, then send order).  Execution
    is bit-identical for a fixed (seed, shards) whether the shards run
    sequentially or on [shards] domains ([parallel:true]); [shards = 1]
    reproduces the unsharded runtime exactly. *)

open Dcp_wire
module Clock = Dcp_sim.Clock

type world
type guardian
type ctx
(** Capability handed to a guardian's code: all in-model operations go
    through it, which is what pins them to that guardian and its node. *)

type node_id = int

(** A guardian definition — the [guardian_def] of §3.2.  [provides] lists
    the port types created with each instance; [init] is "the sequential
    program to be run when an instance is created"; [recover], when present,
    is the recovery process started after a node crash. *)
type def = {
  def_name : string;
  provides : (Vtype.port_type * int) list;  (** (port type, buffer capacity) *)
  init : ctx -> Value.t list -> unit;
  recover : (ctx -> unit) option;
}

(** {1 World setup} *)

type config = {
  codec : Codec.config;
  mtu : int;
  local_delay : Clock.time;  (** intra-node message latency *)
  crash_tear_p : float;  (** probability a crash tears the last WAL record *)
  default_port_capacity : int;
  processors_per_node : int;
      (** §1.1: "each node consists of one or more processors" — the units
          {!compute} contends for (default 8) *)
  disk : Dcp_stable.Disk.spec option;
      (** attach a disk-fault injector to every guardian store (default
          [None]: perfect disks).  Each store gets its own RNG stream split
          from its shard's system stream; appends may stall, crashes may
          tear/drop un-flushed records and rot flushed state.  The runtime
          flushes a guardian's store before any of its messages leaves the
          node, so acknowledged state survives every non-rot fault, and rot
          is salvaged or quarantined at recovery ([stable.*] metrics). *)
  checkpoint_every : int option;
      (** auto-checkpoint a guardian store after this many mutations
          (default [None]: only explicit {!Dcp_stable.Store.checkpoint}
          calls compact), bounding recovery replay to O(interval). *)
}

val default_config : config

val create_world :
  seed:int ->
  topology:Dcp_net.Topology.t ->
  ?config:config ->
  ?shards:int ->
  ?epoch:Clock.time ->
  ?parallel:bool ->
  unit ->
  world
(** [shards] (default 1) partitions the world; [epoch] (default 1ms) is the
    barrier spacing for cross-shard exchange; [parallel] (default false)
    runs each epoch on [shards] domains.  The trace is identical for a
    fixed (seed, shards) regardless of [parallel].
    @raise Invalid_argument if [shards < 1] or [epoch <= 0]. *)

val engine : world -> Dcp_sim.Engine.t
(** Shard 0's engine.  With [shards = 1] (the default) this is the world's
    only engine and behaves exactly as before sharding.  Multi-shard
    harness code should prefer the aggregates ({!events_executed},
    {!network_stats}) and {!schedule_at}. *)

val network : world -> Dcp_net.Network.t
(** Shard 0's network instance (all shards share the topology; loss/delay
    profile knobs on any instance affect only traffic simulated there). *)

val now : world -> Clock.time
(** Shard 0's clock.  At epoch barriers all shard clocks agree. *)

val run : world -> unit
val run_for : world -> Clock.time -> unit
val metrics : world -> Dcp_sim.Metrics.registry
(** With [shards = 1], the live registry.  Otherwise a merged snapshot of
    the per-shard registries (counters sum, gauges max, histograms add);
    reading it is cheap but not free — hot code should hold a ctx and use
    {!ctx_metrics}. *)

val trace : world -> Dcp_sim.Trace.t
(** Shard 0's trace. *)

val registry : world -> Transmit.registry
val world_rng : world -> Dcp_rng.Rng.t
(** A dedicated stream for workload generators, split from the world seed.
    In a sharded world this is shard 0's stream; in-model code should draw
    from {!ctx_rng} so each shard consumes its own stream. *)

val shard_count : world -> int
val epoch_length : world -> Clock.time
val node_shard : world -> node_id -> int
(** Which shard hosts a node: [i mod shards] for the topology's [i]-th
    node. @raise Invalid_argument on unknown node. *)

val events_executed : world -> int
(** Total engine events executed, summed across shards. *)

val network_stats : world -> Dcp_net.Network.stats
(** Network counters summed across shards. *)

val schedule_at : world -> node:node_id -> at:Clock.time -> (unit -> unit) -> unit
(** Host-side scheduling pinned to the shard owning [node]: the callback
    runs on that shard's engine, so it may touch the node (crash it,
    restart it, read its state) even in a parallel run.  Fault injectors
    and workload drivers targeting a node must use this rather than
    scheduling on {!engine}. @raise Invalid_argument on unknown node. *)

val register_def : world -> def -> unit
(** Add a guardian definition to the system library (compile-time library of
    guardian headers, §3.2).  @raise Invalid_argument on duplicate names. *)

val find_def : world -> string -> def option

(** {1 Guardians} *)

val create_guardian :
  world -> at:node_id -> def_name:string -> args:Value.t list -> guardian
(** Bootstrap placement of a guardian at a node (the node owner installing
    software).  In-model creation must use {!ctx_create_guardian} or the
    primordial guardian protocol.
    @raise Invalid_argument on unknown node/def or a down node. *)

val guardian_id : guardian -> int
val guardian_def_name : guardian -> string
val guardian_node : guardian -> node_id
val guardian_alive : guardian -> bool
val guardian_ports : guardian -> Port_name.t list
(** Names of the ports the guardian currently provides, in creation order. *)

val guardians_at : world -> node_id -> guardian list

val find_guardians : world -> def_name:string -> guardian list
(** Instances of a definition in creation order, O(1) in the number of other
    guardians (indexed by definition name). *)

val all_guardians : world -> guardian list
(** Every guardian in the world, in creation order. *)

val guardian_store : guardian -> Dcp_stable.Store.t
(** The guardian's stable store, for tests and observability harnesses.
    In-model code should use {!store} on its own ctx — a guardian's store
    is private to it. *)

(** {1 Node failure} *)

val node_up : world -> node_id -> bool
val crash_node : world -> node_id -> unit
(** Idempotent. Volatile state is lost; stable stores survive (modulo a
    possibly torn final record). *)

val restart_node : world -> node_id -> unit
(** Bring the node back; recoverable guardians recover: stable store
    replayed, birth ports reopened (same names), the [recover] process
    spawned.  Runtime-minted ports ({!new_port}) do *not* survive — the
    conversations they served are forgotten, per §3.5. *)

val crash_count : world -> node_id -> int

(** {1 Operations inside a guardian (ctx)} *)

val ctx_world : ctx -> world
val ctx_guardian : ctx -> guardian
val ctx_node : ctx -> node_id
val ctx_now : ctx -> Clock.time

val ctx_metrics : ctx -> Dcp_sim.Metrics.registry
(** This guardian's shard's live registry.  Primitives must record their
    counters here (not through {!metrics}), keeping the instrumented path
    shard-local. *)

val ctx_rng : ctx -> Dcp_rng.Rng.t
(** This guardian's shard's workload stream.  Equals {!world_rng} when
    [shards = 1]. *)

val ctx_shards : ctx -> int
(** [shard_count (ctx_world c)], for primitives that keep a legacy global
    id scheme at [1] and a sharded one above. *)

val ctx_mint_id : ctx -> int
(** A fresh id unique across the world and deterministic per
    (seed, shards): minted from a per-shard strided counter (shard k mints
    k, k+N, k+2N, …).  For request/channel ids that end up inside message
    bytes — a cross-domain atomic counter would break sequential/parallel
    bit-identity. *)

exception Send_failed of string
(** Raised by {!send} only for sender-side errors: the value failed to
    encode (bounds, unregistered abstract type) — §3.4 step 1.  Transport
    problems are never raised; they surface, at most, as failure messages. *)

val send :
  ctx -> to_:Port_name.t -> ?reply_to:Port_name.t -> string -> Value.t list -> unit
(** No-wait send of [command(args)].  Returns immediately after composing
    and scheduling the message. *)

val receive :
  ctx -> ?timeout:Clock.time -> Port.t list -> [ `Msg of Port.t * Message.t | `Timeout ]
(** Receive on a prioritised port list.  All ports must belong to this
    guardian — "only processes within that guardian can receive messages
    from it" (§3.2). @raise Invalid_argument otherwise. *)

val port : ctx -> int -> Port.t
(** The guardian's port with index [i] (birth ports get 0..n-1).  Indices are
    stable: removing a port never renumbers the others.
    @raise Invalid_argument. *)

val new_port : ctx -> ?capacity:int -> Vtype.port_type -> Port.t
(** Mint a fresh port at runtime — Figure 5's [s: replyport := new port].
    Port indices are minted from a per-guardian monotonic counter, so a new
    port never collides with a live port's index even after removals. *)

val remove_port : ctx -> Port.t -> unit
(** Discard a runtime-minted port (a finished conversation): late messages
    to it are discarded with failure("target port does not exist"). *)

val spawn : ctx -> name:string -> (unit -> unit) -> Process.t
(** Fork a process inside the guardian (Figures 1b/1c, §2.3). *)

val sleep : ctx -> Clock.time -> unit
(** Block for virtual time without using a processor (waiting on a device,
    a human, a timer). *)

val compute : ctx -> Clock.time -> unit
(** Occupy one of this node's processors for the given duration, queueing
    (FIFO) when all are busy — the contention of §1's Advantage 1.  All
    guardians at a node share its processors; colocating too much work on
    one node shows up here. *)

val idle_processors : world -> node_id -> int
(** Processors currently free at a node (observability for tests). *)

val ctx_create_guardian : ctx -> def_name:string -> args:Value.t list -> guardian
(** In-model creation: the new guardian lives at this guardian's node. *)

val self_destruct : ctx -> unit
(** The guardian removes itself: ports close, processes die (the caller
    stops at its next blocking point). *)

val store : ctx -> Dcp_stable.Store.t
(** The guardian's stable store (survives node crashes). *)

val seal_token : ctx -> obj:int -> Token.t
val unseal_token : ctx -> Token.t -> int option
(** Sealed-capability tokens for guardian-local objects (§2.1); unsealing a
    token sealed by any other guardian yields [None]. *)

val sync_mutex : ctx -> Sync.mutex
val sync_condition : ctx -> Sync.condition
val sync_keyed_lock : ctx -> 'k Sync.keyed_lock
(** Fresh synchronization objects bound to this world's engine. *)
