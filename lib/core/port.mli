(** Ports: one-directional, typed, buffered gateways into a guardian (§3.2).

    "There can be many ports on a single guardian; each port belongs to a
    guardian, and only processes within that guardian can receive messages
    from it. ...  We assume that ports provide some buffer space so that
    messages may be queued if necessary."

    A port couples a global {!Dcp_wire.Port_name} with a message signature
    (its port type), a bounded FIFO buffer, and the set of processes blocked
    receiving on it.  [enqueue] either hands the message directly to a
    waiting receiver, buffers it, or reports [`Full] — the caller (the
    runtime) then applies §3.4: "if there is no room for the message ... the
    message is thrown away" with a failure notice to the reply port. *)

open Dcp_wire

type t

val create : name:Port_name.t -> ptype:Vtype.port_type -> capacity:int -> t

val name : t -> Port_name.t
val ptype : t -> Vtype.port_type
val capacity : t -> int
val queued : t -> int
val is_open : t -> bool

val waiter_count : t -> int
(** Processes currently registered as blocked receivers on this port.  A
    waiter that resumed via another port or timed out is deregistered
    immediately, so this is bounded by the number of blocked processes
    (observability for tests). *)

val enqueue : t -> Message.t -> [ `Delivered | `Queued | `Full | `Closed ]
(** [`Delivered] means a blocked receiver took the message directly. *)

val close : t -> unit
(** Guardian death / node crash: buffered messages are lost; blocked
    receivers are *not* resumed (their processes are being killed by the
    same event). *)

val reopen : t -> unit
(** Recovery: same name, fresh empty buffer. *)

type outcome = [ `Msg of t * Message.t | `Timeout ]

val receive :
  Dcp_sim.Engine.t -> ports:t list -> timeout:Dcp_sim.Clock.time option -> outcome
(** Blocking receive on a set of ports, earlier ports having priority when
    several hold messages (the paper promises "a way of giving ports
    priority").  Must be called from inside a process.  [timeout:None]
    waits forever. *)

val try_receive : ports:t list -> (t * Message.t) option
(** Non-blocking variant. *)
