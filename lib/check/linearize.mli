(** Wing–Gold-style linearizability checker for register/snapshot
    histories.

    A history is a set of {!event}s: per-client invocation/response records
    of operations against an integer-valued key → value memory.  The
    checker searches for a linearization — a total order of the operations
    that (a) respects real time (if one operation's response precedes
    another's invocation, it is ordered first) and (b) is a legal
    sequential execution of a map of integer registers (every read returns
    the latest written value, every snapshot the whole current map).

    Pending operations (invoked, never answered — the client timed out) are
    handled per the standard completion rule: a pending {e write} may be
    linearized at any point after its invocation or dropped entirely (the
    effect of a timed-out write is unknown); pending reads and snapshots
    constrain nothing and are discarded.

    The search is exponential in the worst case but memoised on
    (completed-set, resulting state), and — when the history contains no
    snapshot operations — split per key first, since linearizability is
    compositional over disjoint objects.  Failure reasons are deterministic
    (the search order is fixed by the sorted history), which is what lets
    sweeps and {!Shrink} treat them as data. *)

type op =
  | Write of string * int
  | Read of string
  | Snapshot

type reply =
  | Acked  (** a write's acknowledgement *)
  | Value_is of int option  (** a read's result; [None] = key unknown *)
  | State_is of (string * int) list  (** a snapshot's result, key-sorted *)

type event = {
  client : int;
  op : op;
  reply : reply option;  (** [None]: no response observed (pending) *)
  inv : int;  (** invocation time (virtual) *)
  resp : int;  (** response time; [max_int] when pending *)
}

val check : ?max_states:int -> event list -> (unit, string) result
(** [Error reason] when no linearization exists; [Error] with a
    ["search budget"] reason if [max_states] (default 200k) memoised states
    were explored without an answer. *)

(** {1 Store capture}

    Workload drivers record one event per operation into their own stable
    store under ["h:<seq>"] keys; oracles read them back with
    {!events_in_store}, making the checker a pure function of the finished
    world — the same accessor pattern as every other oracle.  Keys must not
    contain spaces, commas or ['=']. *)

val history_prefix : string
(** ["h:"] *)

val record : Dcp_core.Runtime.ctx -> seq:int -> event -> unit

val encode_event : event -> string
val decode_event : string -> event option

val events_in_store : Dcp_stable.Store.t -> event list
(** All recorded events in recording order; undecodable records are
    skipped. *)
