type failure = {
  profile : string;
  seed : int;
  reason : string;
}

type t = {
  scenario : string;
  profiles : string list;
  seed_base : int;
  seeds : int;
  runs : int;
  failures : failure list;
  wall_s : float;
}

let run ?horizon ?workload ?(shards = 1) ?(parallel = false) ?progress scenario
    ~profiles ~seed_base ~seeds =
  let started = Unix.gettimeofday () in
  let total = List.length profiles * seeds in
  let done_ = ref 0 in
  let failures = ref [] in
  List.iter
    (fun profile ->
      for seed = seed_base to seed_base + seeds - 1 do
        let outcome =
          Scenario.execute scenario ~seed ~profile ?horizon ?workload ~shards ~parallel ()
        in
        (match Scenario.fail_reason outcome with
        | None -> ()
        | Some reason -> failures := { profile = profile.Profile.name; seed; reason } :: !failures);
        incr done_;
        match progress with None -> () | Some f -> f ~done_:!done_ ~total
      done)
    profiles;
  {
    scenario = scenario.Scenario.name;
    profiles = List.map (fun p -> p.Profile.name) profiles;
    seed_base;
    seeds;
    runs = total;
    failures = List.rev !failures;
    wall_s = Unix.gettimeofday () -. started;
  }

let failing_seeds t = List.map (fun f -> (f.profile, f.seed)) t.failures

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %d runs (%d seeds from %d x profiles %s): %d failure%s, %.2fs@]"
    t.scenario t.runs t.seeds t.seed_base
    (String.concat "," t.profiles)
    (List.length t.failures)
    (if List.length t.failures = 1 then "" else "s")
    t.wall_s;
  List.iter
    (fun f -> Format.fprintf ppf "@
  FAIL seed=%d profile=%s: %s" f.seed f.profile f.reason)
    t.failures

(* Same defensive escaping as the bench emitter: names and reasons are
   controlled strings, but keep the JSON well-formed whatever they hold. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json ~path sweeps =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"dcp.check.sweep/v1\",\n  \"sweeps\": [";
  List.iteri
    (fun i t ->
      Printf.fprintf oc "%s\n    {\n      \"scenario\": \"%s\",\n      \"profiles\": [%s],\n"
        (if i = 0 then "" else ",")
        (json_escape t.scenario)
        (String.concat ", " (List.map (fun p -> Printf.sprintf "\"%s\"" (json_escape p)) t.profiles));
      Printf.fprintf oc "      \"seed_base\": %d,\n      \"seeds_per_profile\": %d,\n      \"runs\": %d,\n"
        t.seed_base t.seeds t.runs;
      Printf.fprintf oc "      \"wall_s\": %.3f,\n      \"failures\": [" t.wall_s;
      List.iteri
        (fun j f ->
          Printf.fprintf oc "%s\n        { \"profile\": \"%s\", \"seed\": %d, \"reason\": \"%s\" }"
            (if j = 0 then "" else ",")
            (json_escape f.profile) f.seed (json_escape f.reason))
        t.failures;
      Printf.fprintf oc "%s]\n    }" (if t.failures = [] then "" else "\n      ");
      ())
    sweeps;
  Printf.fprintf oc "\n  ]\n}\n";
  close_out oc
