(** Counterexample shrinking.

    Given a failing (seed, profile) point, greedily minimise the horizon,
    the workload size, and the fault intensity while the scenario still
    fails, and report the smallest reproducing configuration.  Every trial
    is a deterministic replay, so the shrink itself is deterministic. *)

module Clock = Dcp_sim.Clock

type counterexample = {
  scenario : string;
  seed : int;
  profile : string;  (** base profile name (before intensity scaling) *)
  intensity : float;
  horizon : Clock.time;
  workload : int;
  reason : string;  (** failure reason at the minimal point *)
  trials : int;  (** scenario runs spent, including the initial replay *)
  accepted : int;  (** shrink steps that kept the failure alive *)
}

val run :
  Scenario.t ->
  seed:int ->
  profile:Profile.t ->
  ?horizon:Clock.time ->
  ?workload:int ->
  ?budget:int ->
  unit ->
  (counterexample, string) result
(** [Error] when the starting point does not fail (nothing to shrink).
    [budget] caps the number of scenario runs (default 60). *)

val replay_hint : counterexample -> string
(** The CLI invocation that reproduces the minimal counterexample. *)

val pp : Format.formatter -> counterexample -> unit
