(** Model-based oracles: invariants checked against the world at a
    quiescent point.

    An oracle inspects the (live, recovered) stable stores of a finished
    run and compares them with what a sequential reference model predicts.
    Oracles return [Error reason] instead of raising so the sweep and
    shrink machinery can treat failures as data; reasons are deterministic
    strings — the same (seed, profile, horizon, workload) always produces
    the same reason. *)

module Runtime = Dcp_core.Runtime

type t = {
  name : string;
  check : Runtime.world -> (unit, string) result;
}

val check_all : t list -> Runtime.world -> (unit, string) result
(** First failing oracle wins; its reason is prefixed with the oracle
    name. *)

(** {1 Stable-storage oracles} *)

val stable_durability : t
(** Every live guardian store's in-memory table equals replay of its own
    newest restorable checkpoint plus log suffix
    ({!Dcp_stable.Store.durability_check}) — i.e. what a recovery at this
    instant would rebuild.  Catches silent divergence the scenario-level
    invariants might not read. *)

(** {1 Bank oracles} *)

(** One issued transfer, as the workload driver recorded it.  [observed]
    is the client-visible outcome ("ok", "insufficient", "timeout", ...;
    "pending" until the call returns). *)
type bank_transfer = {
  tid : int;
  from_branch : int;
  from_account : string;
  to_branch : int;
  to_account : string;
  amount : int;
  mutable observed : string;
}

val bank_quiescent : t
(** No transfer saga is still logged as in flight. *)

val bank_conservation : expected_total:int -> t
(** Money is conserved: the branches' balances sum to the initial total. *)

val bank_model :
  initial:(int * string * int) list ->
  ledger:bank_transfer list ref ->
  ?model_skips:int ->
  unit ->
  t
(** The sequential reference model.  [initial] seeds the model with
    [(branch index, account, opening balance)]; [ledger] is the driver's
    issue-order record of transfers (stored newest first).  The oracle
    reconstructs each transfer's ground-truth commit decision from the
    branches' durable response records ({!Dcp_bank.Branch.recorded_response}
    keyed by {!Dcp_bank.Transfer.step_request_ids}), replays the committed
    ones through the model, and requires (a) every balance to equal the
    model's, (b) every client-acked "ok" to have committed, and (c) every
    withdraw to be matched by a deposit or refund.

    [model_skips] makes the model ignore the first n issued transfers —
    the deliberate mutation used by the harness self-test; leave it at 0
    for an honest oracle. *)

(** {1 Replica oracles} *)

val replica_convergence : t
(** Anti-entropy convergence at quiescence: every live replica's mirrored
    key → stamp table ({!Dcp_primitives.Replica.table_in_store}) is
    identical.  Value agreement follows: last-writer-wins stores a value
    only under the stamp that won it. *)

val replica_sync_budget : budget:int -> t
(** Every sync message respected the byte budget: the
    [replica.sync.over_budget] counter is zero and the largest recorded
    sync payload ([replica.sync.max_bytes]) is within [budget]. *)

(** {1 Register / snapshot oracles} *)

val linearizable : clients:string -> ?max_states:int -> unit -> t
(** The operation histories captured in the stable stores of every
    [clients] guardian (the workload drivers, via {!Linearize.record})
    admit a linearization; fails with the checker's deterministic reason
    otherwise, or when no operation at all was recorded (a run too faulted
    to exercise the register would otherwise vacuously pass). *)

val table_convergence : def_name:string -> t
(** Every live member of an SCD object group ([def_name] is
    {!Dcp_primitives.Register.def_name} or
    {!Dcp_primitives.Snapshot.def_name}) mirrors the same key → ts table
    ({!Dcp_primitives.Register.Table.in_store}) at quiescence. *)

(** {1 Airline oracles} *)

val airline_seat_ledger : capacity:int -> waitlist_capacity:int -> t
(** Per-date seat accounting on every live flight store: never overbooked,
    no duplicated passenger, waitlist within bounds. *)

val itinerary_atomicity : outcomes:(string * string) list ref -> t
(** All-or-nothing trips: a passenger holds seats on all flights or none;
    every client told "booked" (per [outcomes]: (passenger, outcome))
    really holds its seats; no 2PC hold is left open. *)
