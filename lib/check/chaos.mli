(** Fault injection drivers shared by scenarios and tests.

    This is the crash-restart machinery that used to live as private
    helpers in [test_chaos.ml], made reusable: a way to run an anonymous
    client process inside a world, and a deterministic crash scheduler
    parameterised by a {!Profile.t}. *)

module Clock = Dcp_sim.Clock
module Runtime = Dcp_core.Runtime

val driver : Runtime.world -> at:Runtime.node_id -> name:string -> (Runtime.ctx -> unit) -> unit
(** Register a one-off guardian definition [name] whose init runs [body],
    and create an instance at node [at].  Names must be unique per world. *)

val schedule_crashes :
  Runtime.world ->
  rng:Dcp_rng.Rng.t ->
  profile:Profile.t ->
  nodes:Runtime.node_id list ->
  horizon:Clock.time ->
  unit
(** Plan crash-restart cycles over [nodes] up to [horizon], following the
    profile's [crash_every]/[crash_outage] (no-op when the profile has no
    crash schedule or [nodes] is empty).  The profile's
    [max_concurrent_crashes] bounds how many nodes may be down at once
    (the default 1 reproduces the legacy single-victim schedule exactly),
    and a final sweep shortly after [horizon] restarts anything still
    down, so quiescent-point oracles always see a live system. *)
