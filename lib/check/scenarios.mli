(** The concrete scenario library.

    Each scenario wires a subsystem workload to the fault machinery and
    its model oracles:

    - [bank]: cross-branch transfer sagas; money conservation, saga
      quiescence, and the sequential reference model over the branches'
      durable response records.
    - [airline]: the Figure-2 cluster under clerk load; per-date seat
      ledger invariants.
    - [itinerary]: two-leg 2PC bookings; all-or-nothing atomicity, honest
      acks, no dangling holds.
    - [replica]: 100 anti-entropy gossip replicas under write load and
      churn; all live key → stamp tables identical at quiescence, every
      sync message under the byte budget, convergence time measured.
    - [replica_1k]: the same protocol at 1000 replicas — a scale probe
      runnable by name but kept out of the default sweep.
    - [register]: SCD-broadcast atomic registers (5 members) under client
      load and churn; the recorded per-client histories must linearize and
      every member's durable table must converge.
    - [snapshot]: the SCD snapshot object (4 members); same oracles, with
      whole-state snapshot views in the histories.
    - [bank_mutated]: [bank] with a reference model that deliberately
      ignores the first transfer — the harness self-test.  It MUST fail on
      most seeds; a sweep that reports it green means the checker itself
      is broken.
    - [register_mutated]: [register] without delivery barriers — writes
      acked at broadcast time, reads served from the stale local copy —
      the linearizability oracle's self-test; must fail under profiles
      with real network delay. *)

val bank : Scenario.t
val airline : Scenario.t
val itinerary : Scenario.t
val replica : Scenario.t
val register : Scenario.t
val snapshot : Scenario.t
val replica_1k : Scenario.t
val bank_mutated : Scenario.t
val register_mutated : Scenario.t

val all : Scenario.t list
(** The honest default-sweep scenarios (excludes [bank_mutated] and
    [replica_1k]). *)

val every : Scenario.t list
(** [all] plus the off-by-default scenarios ([bank_mutated],
    [replica_1k]) — what [list] shows and [find] searches. *)

val find : string -> Scenario.t option
(** By name, including [bank_mutated] and [replica_1k]. *)

val names : string list
(** Every scenario name, including [bank_mutated] and [replica_1k]. *)
