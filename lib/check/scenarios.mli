(** The concrete scenario library.

    Each scenario wires a subsystem workload to the fault machinery and
    its model oracles:

    - [bank]: cross-branch transfer sagas; money conservation, saga
      quiescence, and the sequential reference model over the branches'
      durable response records.
    - [airline]: the Figure-2 cluster under clerk load; per-date seat
      ledger invariants.
    - [itinerary]: two-leg 2PC bookings; all-or-nothing atomicity, honest
      acks, no dangling holds.
    - [bank_mutated]: [bank] with a reference model that deliberately
      ignores the first transfer — the harness self-test.  It MUST fail on
      most seeds; a sweep that reports it green means the checker itself
      is broken. *)

val bank : Scenario.t
val airline : Scenario.t
val itinerary : Scenario.t
val bank_mutated : Scenario.t

val all : Scenario.t list
(** The honest scenarios (excludes [bank_mutated]). *)

val find : string -> Scenario.t option
(** By name, including [bank_mutated]. *)

val names : string list
(** Every scenario name, including [bank_mutated]. *)
