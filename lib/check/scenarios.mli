(** The concrete scenario library.

    Each scenario wires a subsystem workload to the fault machinery and
    its model oracles:

    - [bank]: cross-branch transfer sagas; money conservation, saga
      quiescence, and the sequential reference model over the branches'
      durable response records.
    - [airline]: the Figure-2 cluster under clerk load; per-date seat
      ledger invariants.
    - [itinerary]: two-leg 2PC bookings; all-or-nothing atomicity, honest
      acks, no dangling holds.
    - [replica]: 100 anti-entropy gossip replicas under write load and
      churn; all live key → stamp tables identical at quiescence, every
      sync message under the byte budget, convergence time measured.
    - [replica_1k]: the same protocol at 1000 replicas — a scale probe
      runnable by name but kept out of the default sweep.
    - [bank_mutated]: [bank] with a reference model that deliberately
      ignores the first transfer — the harness self-test.  It MUST fail on
      most seeds; a sweep that reports it green means the checker itself
      is broken. *)

val bank : Scenario.t
val airline : Scenario.t
val itinerary : Scenario.t
val replica : Scenario.t
val replica_1k : Scenario.t
val bank_mutated : Scenario.t

val all : Scenario.t list
(** The honest default-sweep scenarios (excludes [bank_mutated] and
    [replica_1k]). *)

val every : Scenario.t list
(** [all] plus the off-by-default scenarios ([bank_mutated],
    [replica_1k]) — what [list] shows and [find] searches. *)

val find : string -> Scenario.t option
(** By name, including [bank_mutated] and [replica_1k]. *)

val names : string list
(** Every scenario name, including [bank_mutated] and [replica_1k]. *)
