(** The checkable scenario abstraction.

    A scenario is a pure function from (seed, fault profile, horizon,
    workload size) to an outcome: it builds a fresh world from the seed,
    installs a workload, schedules faults per the profile, runs to a
    quiescent point and evaluates its oracles.  Purity is what makes seed
    sweeps replayable and counterexamples shrinkable — a failing (seed,
    profile, horizon, workload) quadruple alone reproduces the failure. *)

module Clock = Dcp_sim.Clock

type params = {
  seed : int;
  profile : Profile.t;
  horizon : Clock.time;  (** fault-injection and workload-pacing window *)
  workload : int;  (** scenario-defined size knob (transfers, clerks, trips) *)
  shards : int;  (** world partition count; part of the determinism surface *)
  parallel : bool;  (** run shards on domains (must not change the fingerprint) *)
}

type verdict = Pass | Fail of string

type outcome = {
  verdict : verdict;
  fingerprint : string;
      (** digest of observable counters; identical params must yield
          identical fingerprints (the determinism surface) *)
  stats : (string * int) list;
}

type t = {
  name : string;
  descr : string;
  default_horizon : Clock.time;
  default_workload : int;
  run : params -> outcome;
}

val execute :
  t ->
  seed:int ->
  profile:Profile.t ->
  ?horizon:Clock.time ->
  ?workload:int ->
  ?intensity:float ->
  ?shards:int ->
  ?parallel:bool ->
  unit ->
  outcome
(** Run with defaults filled in; [intensity] rescales the profile's fault
    probabilities ({!Profile.scale}, default 1.0).  [shards] (default 1)
    partitions the world; the fingerprint is a function of
    (seed, profile, horizon, workload, shards) and must not depend on
    [parallel]. *)

val fail_reason : outcome -> string option
val stat : outcome -> string -> int
(** Named stat, 0 when absent. *)

val pp_outcome : Format.formatter -> outcome -> unit
