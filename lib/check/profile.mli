(** Fault profiles: one point in the link-model × crash-schedule matrix.

    The paper's robustness claims (§2.2 crash/recovery, §3.4 lost and
    duplicated messages, §3.5 timeout-driven retry) are claims about *all*
    admissible executions, so the checker sweeps scenarios across a matrix
    of delivery-fault models (perfect/lan/wan/lossy links) crossed with
    crash-restart schedules.  A profile is deterministic data; all
    randomness comes from the scenario seed at run time. *)

module Clock = Dcp_sim.Clock

type t = {
  name : string;
  link : Dcp_net.Link.t;  (** inter-node link model *)
  crash_every : Clock.time option;
      (** mean gap between crash injections; [None] = no crashes *)
  crash_outage : Clock.time;  (** how long a crashed node stays down *)
  max_concurrent_crashes : int;
      (** how many nodes the scheduler may hold down at once.  [1] keeps
          the legacy schedule draw-for-draw (a crash only targets an up
          node); above 1 the scheduler crashes into existing outages until
          the bound is reached, so recovery runs while peers are down. *)
  disk : Dcp_stable.Disk.spec option;
      (** the storage axis of the matrix: [None] = perfect disks, [Some]
          attaches the fault injector to every guardian store. *)
}

val all : t list
(** The full matrix: [perfect], [lan], [wan], [lossy], [wan+lossy] links,
    each calm, with a crash-restart schedule ([<link>+crash]), and with
    crashes plus flaky disks and overlapping outages
    ([<link>+crash+disk]). *)

val names : string list

val find : string -> t option
(** Look up a profile by name ([find "wan+crash"]). *)

val scale : t -> intensity:float -> t
(** Shrinking knob: scale every fault probability (loss, duplication,
    corruption, and the disk's stall/tear/drop/rot) by [intensity] (clamped
    to [0,1]) and stretch the crash period by [1/intensity];
    [intensity = 0.] disables faults, crashes and the disk injector
    entirely.  [scale t ~intensity:1.] is [t]. *)

val pp : Format.formatter -> t -> unit
