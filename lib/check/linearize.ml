module Store = Dcp_stable.Store
module Runtime = Dcp_core.Runtime

type op = Write of string * int | Read of string | Snapshot

type reply =
  | Acked
  | Value_is of int option
  | State_is of (string * int) list

type event = {
  client : int;
  op : op;
  reply : reply option;
  inv : int;
  resp : int;
}

(* ---- encoding (store capture) ---- *)

let history_prefix = "h:"

let encode_event e =
  match e.op with
  | Write (key, v) ->
      let tail = match e.reply with None -> "p" | Some Acked -> "ok" | Some _ -> "x" in
      Printf.sprintf "w %d %d %d %s %d %s" e.client e.inv e.resp key v tail
  | Read key ->
      let tail =
        match e.reply with
        | None -> "p"
        | Some (Value_is None) -> "none"
        | Some (Value_is (Some v)) -> string_of_int v
        | Some _ -> "x"
      in
      Printf.sprintf "r %d %d %d %s %s" e.client e.inv e.resp key tail
  | Snapshot ->
      let tail =
        match e.reply with
        | None -> "p"
        | Some (State_is []) -> "-"
        | Some (State_is entries) ->
            String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) entries)
        | Some _ -> "x"
      in
      Printf.sprintf "s %d %d %d %s" e.client e.inv e.resp tail

let ( let* ) = Option.bind

let decode_state tail =
  if String.equal tail "-" then Some []
  else
    List.fold_left
      (fun acc part ->
        let* parsed = acc in
        match String.index_opt part '=' with
        | None -> None
        | Some i ->
            let key = String.sub part 0 i in
            let* v = int_of_string_opt (String.sub part (i + 1) (String.length part - i - 1)) in
            if String.equal key "" then None else Some ((key, v) :: parsed))
      (Some [])
      (String.split_on_char ',' tail)
    |> Option.map (List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2))

let decode_event data =
  let ints client inv resp =
    let* client = int_of_string_opt client in
    let* inv = int_of_string_opt inv in
    let* resp = int_of_string_opt resp in
    Some (client, inv, resp)
  in
  match String.split_on_char ' ' data with
  | [ "w"; client; inv; resp; key; v; tail ] ->
      let* client, inv, resp = ints client inv resp in
      let* v = int_of_string_opt v in
      let* reply =
        match tail with "p" -> Some None | "ok" -> Some (Some Acked) | _ -> None
      in
      Some { client; op = Write (key, v); reply; inv; resp }
  | [ "r"; client; inv; resp; key; tail ] ->
      let* client, inv, resp = ints client inv resp in
      let* reply =
        match tail with
        | "p" -> Some None
        | "none" -> Some (Some (Value_is None))
        | v -> Option.map (fun v -> Some (Value_is (Some v))) (int_of_string_opt v)
      in
      Some { client; op = Read key; reply; inv; resp }
  | [ "s"; client; inv; resp; tail ] ->
      let* client, inv, resp = ints client inv resp in
      let* reply =
        match tail with
        | "p" -> Some None
        | tail -> Option.map (fun st -> Some (State_is st)) (decode_state tail)
      in
      Some { client; op = Snapshot; reply; inv; resp }
  | _ -> None

let record ctx ~seq event =
  Store.set (Runtime.store ctx)
    ~key:(Printf.sprintf "%s%06d" history_prefix seq)
    (encode_event event)

let events_in_store store =
  List.filter_map
    (fun (key, data) ->
      if String.length key >= 2 && String.equal (String.sub key 0 2) history_prefix then
        decode_event data
      else None)
    (Store.to_alist store)

(* ---- the checker ---- *)

exception Budget

(* Sequential state of a map of integer registers, kept as a key-sorted
   assoc list so equal states have equal canonical strings (the memo key). *)
let state_apply state key v =
  let rec insert = function
    | [] -> [ (key, v) ]
    | (k, _) :: rest when String.equal k key -> (key, v) :: rest
    | ((k, _) as entry) :: rest ->
        if String.compare key k < 0 then (key, v) :: (k, snd entry) :: rest
        else entry :: insert rest
  in
  insert state

let state_get state key = List.assoc_opt key state

let state_equal a b =
  List.equal (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && Int.equal v1 v2) a b

let state_to_string state =
  String.concat ";" (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) state)

let describe e =
  let outcome =
    match e.reply with
    | None -> "no response"
    | Some Acked -> "ok"
    | Some (Value_is None) -> "unknown_key"
    | Some (Value_is (Some v)) -> string_of_int v
    | Some (State_is state) -> "{" ^ state_to_string state ^ "}"
  in
  let operation =
    match e.op with
    | Write (k, v) -> Printf.sprintf "write(%s,%d)" k v
    | Read k -> Printf.sprintf "read(%s)" k
    | Snapshot -> "snapshot()"
  in
  let resp = if e.resp = max_int then "-" else string_of_int e.resp in
  Printf.sprintf "%s=%s by client %d [inv %d, resp %s]" operation outcome e.client e.inv resp

let event_order a b =
  let c = Int.compare a.inv b.inv in
  if c <> 0 then c
  else
    let c = Int.compare a.resp b.resp in
    if c <> 0 then c
    else
      let c = Int.compare a.client b.client in
      if c <> 0 then c else String.compare (encode_event a) (encode_event b)

let bit_get bits i = Char.code (Bytes.get bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set bits i =
  let copy = Bytes.copy bits in
  Bytes.set copy (i lsr 3)
    (Char.chr (Char.code (Bytes.get copy (i lsr 3)) lor (1 lsl (i land 7))));
  copy

(* One group (one key, or the whole history when snapshots couple the
   keys): memoised first-fit DFS over (completed set, state). *)
let check_group ~max_states ~states events =
  let ops = Array.of_list (List.sort event_order events) in
  let n = Array.length ops in
  if n = 0 then Ok ()
  else begin
    let memo = Hashtbl.create 1024 in
    let best_count = ref (-1) in
    let best_desc = ref "" in
    let note_best count e =
      if count > !best_count then begin
        best_count := count;
        best_desc := describe e
      end
    in
    let rec dfs bits count state =
      if count = n then true
      else begin
        let memo_key = Bytes.to_string bits ^ "|" ^ state_to_string state in
        if Hashtbl.mem memo memo_key then false
        else begin
          Hashtbl.add memo memo_key ();
          incr states;
          if !states > max_states then raise Budget;
          (* An operation may be linearized next iff no not-yet-linearized
             operation finished strictly before it was invoked. *)
          let bound = ref max_int in
          for i = 0 to n - 1 do
            if (not (bit_get bits i)) && ops.(i).resp < !bound then bound := ops.(i).resp
          done;
          let found = ref false in
          let i = ref 0 in
          while (not !found) && !i < n do
            (if (not (bit_get bits !i)) && ops.(!i).inv <= !bound then
               let e = ops.(!i) in
               let next = bit_set bits !i in
               match (e.op, e.reply) with
               | Write (k, v), Some _ -> found := dfs next (count + 1) (state_apply state k v)
               | Write (k, v), None ->
                   (* A timed-out write either took effect at some point
                      after its invocation or never did. *)
                   found :=
                     dfs next (count + 1) (state_apply state k v) || dfs next (count + 1) state
               | Read k, Some (Value_is expected) ->
                   if Option.equal Int.equal (state_get state k) expected then
                     found := dfs next (count + 1) state
                   else note_best count e
               | Read _, (Some _ | None) -> found := dfs next (count + 1) state
               | Snapshot, Some (State_is expected) ->
                   if state_equal state expected then found := dfs next (count + 1) state
                   else note_best count e
               | Snapshot, (Some _ | None) -> found := dfs next (count + 1) state);
            incr i
          done;
          !found
        end
      end
    in
    if dfs (Bytes.make ((n + 7) / 8) '\000') 0 [] then Ok ()
    else if !best_count >= 0 then
      Error
        (Printf.sprintf "no linearization of %d operations: %s cannot be justified (best %d/%d)"
           n !best_desc !best_count n)
    else Error (Printf.sprintf "no linearization of %d operations" n)
  end

let check ?(max_states = 200_000) events =
  (* Pending reads and snapshots constrain nothing; drop them.  Pending
     writes stay: their effect may or may not have landed. *)
  let events =
    List.filter
      (fun e ->
        match (e.reply, e.op) with
        | Some _, _ -> true
        | None, Write _ -> true
        | None, (Read _ | Snapshot) -> false)
      events
  in
  let has_snapshot = List.exists (fun e -> match e.op with Snapshot -> true | _ -> false) events in
  let states = ref 0 in
  let run () =
    if has_snapshot then check_group ~max_states ~states events
    else begin
      (* Linearizability is compositional over disjoint registers: check
         per key, in key order so the first failing key is deterministic. *)
      let by_key = Hashtbl.create 8 in
      List.iter
        (fun e ->
          let key = match e.op with Write (k, _) | Read k -> k | Snapshot -> "" in
          let existing = Option.value (Hashtbl.find_opt by_key key) ~default:[] in
          Hashtbl.replace by_key key (e :: existing))
        events;
      Hashtbl.fold (fun key group acc -> (key, group) :: acc) by_key []
      |> List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2)
      |> List.fold_left
           (fun acc (key, group) ->
             match acc with
             | Error _ -> acc
             | Ok () -> (
                 match check_group ~max_states ~states group with
                 | Ok () -> Ok ()
                 | Error reason -> Error (Printf.sprintf "key %s: %s" key reason)))
           (Ok ())
    end
  in
  match run () with
  | outcome -> outcome
  | exception Budget ->
      Error (Printf.sprintf "search budget exceeded (%d states)" !states)
