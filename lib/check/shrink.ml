module Clock = Dcp_sim.Clock

type counterexample = {
  scenario : string;
  seed : int;
  profile : string;
  intensity : float;
  horizon : Clock.time;
  workload : int;
  reason : string;
  trials : int;
  accepted : int;
}

let min_horizon = Clock.ms 100

(* One deterministic replay at a candidate configuration. *)
let attempt scenario ~seed ~profile ~intensity ~horizon ~workload =
  let outcome = Scenario.execute scenario ~seed ~profile ~horizon ~workload ~intensity () in
  Scenario.fail_reason outcome

let run scenario ~seed ~profile ?horizon ?workload ?(budget = 60) () =
  let horizon0 = Option.value horizon ~default:scenario.Scenario.default_horizon in
  let workload0 = Option.value workload ~default:scenario.Scenario.default_workload in
  let trials = ref 1 in
  match attempt scenario ~seed ~profile ~intensity:1.0 ~horizon:horizon0 ~workload:workload0 with
  | None -> Error "scenario passes at the starting point; nothing to shrink"
  | Some reason0 ->
      (* Greedy descent: big cuts first (halve the horizon, halve the
         workload), then fine ones (drop one unit of work, damp the fault
         intensity).  Accept the first candidate that still fails and
         restart from it; stop at a fixpoint or when the budget runs out. *)
      let state = ref (horizon0, workload0, 1.0, reason0) in
      let accepted = ref 0 in
      let candidates (horizon, workload, intensity, _) =
        List.concat
          [
            (if horizon / 2 >= min_horizon then [ (horizon / 2, workload, intensity) ] else []);
            (if workload / 2 >= 1 && workload / 2 < workload then
               [ (horizon, workload / 2, intensity) ]
             else []);
            (if workload > 1 then [ (horizon, workload - 1, intensity) ] else []);
            (if intensity > 0.05 then [ (horizon, workload, intensity /. 2.) ] else []);
            (if intensity > 0.0 then [ (horizon, workload, 0.0) ] else []);
          ]
      in
      let rec descend () =
        let rec try_candidates = function
          | [] -> ()
          | (horizon, workload, intensity) :: rest ->
              if !trials >= budget then ()
              else begin
                incr trials;
                match attempt scenario ~seed ~profile ~intensity ~horizon ~workload with
                | Some reason ->
                    state := (horizon, workload, intensity, reason);
                    incr accepted;
                    descend ()
                | None -> try_candidates rest
              end
        in
        try_candidates (candidates !state)
      in
      descend ();
      let horizon, workload, intensity, reason = !state in
      Ok
        {
          scenario = scenario.Scenario.name;
          seed;
          profile = profile.Profile.name;
          intensity;
          horizon;
          workload;
          reason;
          trials = !trials;
          accepted = !accepted;
        }

let replay_hint c =
  Printf.sprintf
    "dune exec bin/dcp_check.exe -- run --scenario %s --seed %d --profile %s --horizon-ms %d --workload %d --intensity %g"
    c.scenario c.seed c.profile (c.horizon / Clock.ms 1) c.workload c.intensity

let pp ppf c =
  Format.fprintf ppf
    "@[<v>minimal counterexample: scenario=%s seed=%d profile=%s intensity=%g horizon=%a workload=%d@ reason: %s@ (%d trials, %d accepted shrinks)@ replay: %s@]"
    c.scenario c.seed c.profile c.intensity Clock.pp c.horizon c.workload c.reason c.trials
    c.accepted (replay_hint c)
