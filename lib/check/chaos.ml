module Clock = Dcp_sim.Clock
module Runtime = Dcp_core.Runtime
module Engine = Dcp_sim.Engine
module Rng = Dcp_rng.Rng

let driver world ~at ~name body =
  let def =
    { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
  in
  Runtime.register_def world def;
  ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])

(* Schedule random crash/restart cycles on the given nodes over a horizon;
   outages last [crash_outage].  How many nodes may be down at once is the
   profile's [max_concurrent_crashes]: at the default 1 the condition is
   exactly the legacy "victim must be up" check (bit-for-bit, draw-for-draw
   — historical fingerprints pin it), while larger bounds crash into
   existing outages until the bound is met, so recovery and anti-entropy
   run while peers are still dark. *)
let schedule_crashes world ~rng ~profile ~nodes ~horizon =
  match (profile.Profile.crash_every, nodes) with
  | None, _ | _, [] -> ()
  | Some every, _ :: _ ->
      let outage = profile.Profile.crash_outage in
      let jitter = Int.max 1 (every / 2) in
      let may_crash victim =
        Runtime.node_up world victim
        && (profile.Profile.max_concurrent_crashes <= 1
           || List.length (List.filter (fun n -> not (Runtime.node_up world n)) nodes)
              < profile.Profile.max_concurrent_crashes)
      in
      if Runtime.shard_count world = 1 then begin
        (* Unsharded path, kept verbatim: victims are drawn lazily at event
           time, which interleaves the rng with engine execution in a way
           pinned by historical fingerprints. *)
        let engine = Runtime.engine world in
        let rec plan at =
          if at < horizon then begin
            let jittered = at + Rng.int rng jitter in
            ignore
              (Engine.schedule engine ~at:jittered (fun () ->
                   let victim = Rng.choice_list rng nodes in
                   if may_crash victim then begin
                     Runtime.crash_node world victim;
                     ignore
                       (Engine.schedule_after engine ~delay:outage (fun () ->
                            Runtime.restart_node world victim))
                   end));
            plan (at + every)
          end
        in
        plan every;
        (* Whatever the interleaving, leave no node down past the horizon. *)
        ignore
          (Engine.schedule engine
             ~at:(horizon + outage + Clock.s 1)
             (fun () ->
               List.iter
                 (fun node ->
                   if not (Runtime.node_up world node) then Runtime.restart_node world node)
                 nodes))
      end
      else begin
        (* Sharded worlds: a crash event must run on the victim's own shard
           (crash/restart touch only that shard's state), so the whole plan
           is drawn up front and each event is pinned with [schedule_at].
           The draw order — every jitter, then every victim — matches the
           lazy path's actual consumption order (jitters at plan time,
           victims in chronological event order), so a given chaos rng
           produces the same plan either way. *)
        let rec times at acc =
          if at < horizon then times (at + every) ((at + Rng.int rng jitter) :: acc)
          else List.rev acc
        in
        let plan =
          List.map (fun at -> (at, Rng.choice_list rng nodes)) (times every [])
        in
        List.iter
          (fun (at, victim) ->
            Runtime.schedule_at world ~node:victim ~at (fun () ->
                if may_crash victim then begin
                  Runtime.crash_node world victim;
                  Runtime.schedule_at world ~node:victim ~at:(at + outage) (fun () ->
                      Runtime.restart_node world victim)
                end))
          plan;
        (* Final sweep, one event per node so each runs on its own shard. *)
        List.iter
          (fun node ->
            Runtime.schedule_at world ~node
              ~at:(horizon + outage + Clock.s 1)
              (fun () ->
                if not (Runtime.node_up world node) then Runtime.restart_node world node))
          nodes
      end
