module Clock = Dcp_sim.Clock
module Runtime = Dcp_core.Runtime
module Engine = Dcp_sim.Engine
module Rng = Dcp_rng.Rng

let driver world ~at ~name body =
  let def =
    { Runtime.def_name = name; provides = []; init = (fun ctx _ -> body ctx); recover = None }
  in
  Runtime.register_def world def;
  ignore (Runtime.create_guardian world ~at ~def_name:name ~args:[])

(* Schedule random crash/restart cycles on the given nodes over a horizon;
   outages last [crash_outage]; never crash two nodes at once (the
   invariants hold even for correlated failures, but single-node churn
   exercises the recovery paths harder per unit of virtual time). *)
let schedule_crashes world ~rng ~profile ~nodes ~horizon =
  match (profile.Profile.crash_every, nodes) with
  | None, _ | _, [] -> ()
  | Some every, _ :: _ ->
      let outage = profile.Profile.crash_outage in
      let engine = Runtime.engine world in
      let jitter = Int.max 1 (every / 2) in
      let rec plan at =
        if at < horizon then begin
          let jittered = at + Rng.int rng jitter in
          ignore
            (Engine.schedule engine ~at:jittered (fun () ->
                 let victim = Rng.choice_list rng nodes in
                 if Runtime.node_up world victim then begin
                   Runtime.crash_node world victim;
                   ignore
                     (Engine.schedule_after engine ~delay:outage (fun () ->
                          Runtime.restart_node world victim))
                 end));
          plan (at + every)
        end
      in
      plan every;
      (* Whatever the interleaving, leave no node down past the horizon. *)
      ignore
        (Engine.schedule engine
           ~at:(horizon + outage + Clock.s 1)
           (fun () ->
             List.iter
               (fun node -> if not (Runtime.node_up world node) then Runtime.restart_node world node)
               nodes))
