module Clock = Dcp_sim.Clock

type params = {
  seed : int;
  profile : Profile.t;
  horizon : Clock.time;
  workload : int;
  shards : int;
  parallel : bool;
}

type verdict = Pass | Fail of string

type outcome = {
  verdict : verdict;
  fingerprint : string;
  stats : (string * int) list;
}

type t = {
  name : string;
  descr : string;
  default_horizon : Clock.time;
  default_workload : int;
  run : params -> outcome;
}

let execute t ~seed ~profile ?horizon ?workload ?(intensity = 1.0) ?(shards = 1)
    ?(parallel = false) () =
  let profile = Profile.scale profile ~intensity in
  let horizon = Option.value horizon ~default:t.default_horizon in
  let workload = Option.value workload ~default:t.default_workload in
  t.run { seed; profile; horizon; workload; shards; parallel }

let fail_reason outcome = match outcome.verdict with Pass -> None | Fail reason -> Some reason

let stat outcome name = Option.value (List.assoc_opt name outcome.stats) ~default:0

let pp_outcome ppf outcome =
  (match outcome.verdict with
  | Pass -> Format.fprintf ppf "PASS"
  | Fail reason -> Format.fprintf ppf "FAIL: %s" reason);
  Format.fprintf ppf "@ [%s]" outcome.fingerprint
