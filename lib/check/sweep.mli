(** Multi-seed sweeps over the fault-profile matrix.

    A sweep runs one scenario over [seeds] consecutive seeds for each
    profile, collecting failures.  Because every run is a pure function of
    its (seed, profile, horizon, workload), two identical sweeps yield the
    same failing-seed set — the replay contract the CLI exposes. *)

type failure = {
  profile : string;
  seed : int;
  reason : string;
}

type t = {
  scenario : string;
  profiles : string list;
  seed_base : int;
  seeds : int;  (** seeds per profile *)
  runs : int;  (** total scenario executions *)
  failures : failure list;  (** in (profile, seed) run order *)
  wall_s : float;
}

val run :
  ?horizon:Dcp_sim.Clock.time ->
  ?workload:int ->
  ?shards:int ->
  ?parallel:bool ->
  ?progress:(done_:int -> total:int -> unit) ->
  Scenario.t ->
  profiles:Profile.t list ->
  seed_base:int ->
  seeds:int ->
  t

val failing_seeds : t -> (string * int) list
(** The (profile, seed) pairs that failed, in run order. *)

val pp : Format.formatter -> t -> unit

val write_json : path:string -> t list -> unit
(** Write the [dcp.check.sweep/v1] summary (seeds run, failures, wall
    time), the CHECK_sweep.json counterpart of BENCH_micro.json. *)
