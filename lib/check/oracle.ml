module Runtime = Dcp_core.Runtime
module Store = Dcp_stable.Store
module Metrics = Dcp_sim.Metrics
module Branch = Dcp_bank.Branch
module Transfer = Dcp_bank.Transfer
module Flight = Dcp_airline.Flight
module Replica = Dcp_primitives.Replica
module Reconcile = Dcp_primitives.Reconcile
module Register = Dcp_primitives.Register
module Scd = Dcp_primitives.Scd

type t = {
  name : string;
  check : Runtime.world -> (unit, string) result;
}

let check_all oracles world =
  List.fold_left
    (fun acc oracle ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
          match oracle.check world with
          | Ok () -> Ok ()
          | Error reason -> Error (Printf.sprintf "%s: %s" oracle.name reason)))
    (Ok ()) oracles

let ( let* ) = Result.bind

(* Every guardian of the definition, with its store, failing if any store
   is still crashed: oracles run after the chaos schedule has restored all
   nodes, so a crashed store means the scenario ended mid-outage. *)
let live_stores world ~def_name =
  let stores =
    List.map (fun g -> Runtime.guardian_store g) (Runtime.find_guardians world ~def_name)
  in
  if List.exists Store.is_crashed stores then
    Error (Printf.sprintf "a %s store is still crashed at check time" def_name)
  else Ok stores

(* ---- stable storage ---- *)

(* Runs over every guardian store in the world: the disk-fault plane
   touches all of them, and a store whose recovered table no longer matches
   replay of its own checkpoint + log is damage the application oracles
   might not notice (e.g. a key no scenario invariant happens to read). *)
let stable_durability =
  {
    name = "stable_durability";
    check =
      (fun world ->
        List.fold_left
          (fun acc g ->
            let* () = acc in
            let store = Runtime.guardian_store g in
            if Store.is_crashed store then Ok ()  (* mid-outage: checked after restart *)
            else
              match Store.durability_check store with
              | Ok () -> Ok ()
              | Error reason ->
                  Error
                    (Printf.sprintf "guardian %d (%s): %s" (Runtime.guardian_id g)
                       (Runtime.guardian_def_name g) reason))
          (Ok ())
          (Runtime.all_guardians world));
  }

(* ---- bank ---- *)

type bank_transfer = {
  tid : int;
  from_branch : int;
  from_account : string;
  to_branch : int;
  to_account : string;
  amount : int;
  mutable observed : string;
}

let bank_quiescent =
  {
    name = "bank_quiescent";
    check =
      (fun world ->
        match Transfer.incomplete_transfers world with
        | 0 -> Ok ()
        | n -> Error (Printf.sprintf "%d transfer sagas still open" n));
  }

let bank_conservation ~expected_total =
  {
    name = "bank_conservation";
    check =
      (fun world ->
        let* stores = live_stores world ~def_name:Branch.def_name in
        let total = List.fold_left (fun acc s -> acc + Branch.total_in_store s) 0 stores in
        if total = expected_total then Ok ()
        else Error (Printf.sprintf "balances sum to %d, expected %d" total expected_total));
  }

(* Ground truth for one transfer, replayed from the branches' durable
   response records. *)
type commit_decision = Untouched | Committed | Refunded | Lost of string

let decision stores entry =
  let withdraw_id, deposit_id, refund_id = Transfer.step_request_ids ~tid:entry.tid in
  let response branch request_id = Branch.recorded_response stores.(branch) ~request_id in
  match response entry.from_branch withdraw_id with
  | None -> Untouched  (* the request never reached the source branch *)
  | Some "ok" -> (
      match response entry.to_branch deposit_id with
      | Some "ok" -> Committed
      | _ -> (
          match response entry.from_branch refund_id with
          | Some "ok" -> Refunded
          | _ ->
              Lost
                (Printf.sprintf "transfer %d: withdraw committed but neither deposit nor refund did"
                   entry.tid)))
  | Some _ -> Untouched  (* insufficient / no_account: nothing was applied *)

let bank_model ~initial ~ledger ?(model_skips = 0) () =
  {
    name = "bank_model";
    check =
      (fun world ->
        let* stores = live_stores world ~def_name:Branch.def_name in
        let stores = Array.of_list stores in
        let model = Hashtbl.create 16 in
        List.iter (fun (branch, account, opening) -> Hashtbl.replace model (branch, account) opening) initial;
        let entries = List.rev !ledger in  (* the driver prepends; replay in issue order *)
        let apply entry =
          let adjust branch account delta =
            let key = (branch, account) in
            let balance = Option.value (Hashtbl.find_opt model key) ~default:0 in
            Hashtbl.replace model key (balance + delta)
          in
          adjust entry.from_branch entry.from_account (-entry.amount);
          adjust entry.to_branch entry.to_account entry.amount
        in
        let rec replay i = function
          | [] -> Ok ()
          | entry :: rest -> (
              match decision stores entry with
              | Lost reason -> Error reason
              | Untouched ->
                  if String.equal entry.observed "ok" then
                    Error (Printf.sprintf "transfer %d acked ok but never committed" entry.tid)
                  else replay (i + 1) rest
              | Refunded -> replay (i + 1) rest
              | Committed ->
                  if String.equal entry.observed "insufficient" then
                    Error (Printf.sprintf "transfer %d acked insufficient but committed" entry.tid)
                  else begin
                    if i >= model_skips then apply entry;
                    replay (i + 1) rest
                  end)
        in
        let* () = replay 0 entries in
        (* Check model entries in (branch, account) order so a multi-account
           divergence always reports the same verdict text. *)
        let entries =
          Hashtbl.fold (fun key expected acc -> (key, expected) :: acc) model []
          |> List.sort (fun ((b1, a1), _) ((b2, a2), _) ->
                 let c = Int.compare b1 b2 in
                 if c <> 0 then c else String.compare a1 a2)
        in
        List.fold_left
          (fun acc ((branch, account), expected) ->
            let* () = acc in
            match Branch.balance_in_store stores.(branch) ~account with
            | Some actual when actual = expected -> Ok ()
            | Some actual ->
                Error
                  (Printf.sprintf "branch %d account %s holds %d, model says %d" branch account
                     actual expected)
            | None -> Error (Printf.sprintf "branch %d account %s missing" branch account))
          (Ok ()) entries);
  }

(* ---- replica ---- *)

(* Anti-entropy has converged iff every live replica mirrors the same
   key → stamp table ([Replica.table_in_store] is sorted by key, so plain
   structural comparison is the convergence predicate).  Value equality
   follows from stamp equality: last-writer-wins only stores a value under
   the stamp that won, so two replicas agreeing on every stamp agree on
   every value. *)
let replica_tables_equal stores =
  match List.map Replica.table_in_store stores with
  | [] | [ _ ] -> Ok ()
  | reference :: rest ->
      let entry_to_string (key, stamp) =
        Printf.sprintf "%s@%s" key (Reconcile.stamp_to_string stamp)
      in
      let entry_equal (k1, s1) (k2, s2) =
        String.equal k1 k2 && Reconcile.stamp_compare s1 s2 = 0
      in
      (* Report only the first differing entry: at 100+ replicas a full
         table dump would drown the verdict, and the first difference is
         deterministic because tables are key-sorted. *)
      let rec first_difference a b =
        match (a, b) with
        | [], [] -> "none"
        | e :: _, [] -> Printf.sprintf "%s missing" (entry_to_string e)
        | [], e :: _ -> Printf.sprintf "%s extra" (entry_to_string e)
        | e1 :: r1, e2 :: r2 ->
            if entry_equal e1 e2 then first_difference r1 r2
            else Printf.sprintf "%s vs %s" (entry_to_string e1) (entry_to_string e2)
      in
      let rec first_divergence i = function
        | [] -> Ok ()
        | table :: rest ->
            if List.equal entry_equal reference table then first_divergence (i + 1) rest
            else
              Error
                (Printf.sprintf
                   "replica %d diverges from replica 0 (%d vs %d keys; first: %s)" i
                   (List.length table) (List.length reference)
                   (first_difference reference table))
      in
      first_divergence 1 rest

let replica_convergence =
  {
    name = "replica_convergence";
    check =
      (fun world ->
        let* stores = live_stores world ~def_name:Replica.def_name in
        replica_tables_equal stores);
  }

let replica_sync_budget ~budget =
  {
    name = "replica_sync_budget";
    check =
      (fun world ->
        let reg = Runtime.metrics world in
        let over = Metrics.count (Metrics.counter reg Replica.metric_over_budget) in
        let max_bytes =
          int_of_float (Metrics.gauge_value (Metrics.gauge reg Replica.metric_max_bytes))
        in
        if over > 0 then
          Error (Printf.sprintf "%d sync messages exceeded the %d-byte budget" over budget)
        else if max_bytes > budget then
          Error (Printf.sprintf "largest sync message was %d bytes, budget %d" max_bytes budget)
        else Ok ());
  }

(* ---- register / snapshot ---- *)

let linearizable ~clients ?(max_states = 200_000) () =
  {
    name = "linearizable";
    check =
      (fun world ->
        let* stores = live_stores world ~def_name:clients in
        let events = List.concat_map Linearize.events_in_store stores in
        if events = [] then Error "no operation was recorded"
        else Linearize.check ~max_states events);
  }

(* Same convergence predicate as the replica oracle, over the SCD objects'
   durable LWW tables ([Register.Table.in_store] is key-sorted; ts
   agreement implies value agreement because a value is only stored under
   the ts that won it). *)
let table_convergence ~def_name =
  {
    name = "table_convergence";
    check =
      (fun world ->
        let* stores = live_stores world ~def_name in
        match List.map Register.Table.in_store stores with
        | [] | [ _ ] -> Ok ()
        | reference :: rest ->
            let entry_to_string (key, (clock, origin)) =
              Printf.sprintf "%s@%d.%d" key clock origin
            in
            let entry_equal (k1, t1) (k2, t2) =
              String.equal k1 k2 && Scd.ts_compare t1 t2 = 0
            in
            let rec first_difference a b =
              match (a, b) with
              | [], [] -> "none"
              | e :: _, [] -> Printf.sprintf "%s missing" (entry_to_string e)
              | [], e :: _ -> Printf.sprintf "%s extra" (entry_to_string e)
              | e1 :: r1, e2 :: r2 ->
                  if entry_equal e1 e2 then first_difference r1 r2
                  else Printf.sprintf "%s vs %s" (entry_to_string e1) (entry_to_string e2)
            in
            let rec first_divergence i = function
              | [] -> Ok ()
              | table :: rest ->
                  if List.equal entry_equal reference table then first_divergence (i + 1) rest
                  else
                    Error
                      (Printf.sprintf
                         "member %d diverges from member 0 (%d vs %d keys; first: %s)" i
                         (List.length table) (List.length reference)
                         (first_difference reference table))
            in
            first_divergence 1 rest);
  }

(* ---- airline ---- *)

let group_by_date pairs =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (date, passenger) ->
      let existing = Option.value (Hashtbl.find_opt table date) ~default:[] in
      Hashtbl.replace table date (passenger :: existing))
    pairs;
  table

let airline_seat_ledger ~capacity ~waitlist_capacity =
  {
    name = "airline_seat_ledger";
    check =
      (fun world ->
        let flights = Runtime.find_guardians world ~def_name:Flight.def_name in
        List.fold_left
          (fun acc g ->
            let* () = acc in
            let store = Runtime.guardian_store g in
            if Store.is_crashed store then Ok ()  (* mid-outage stores are checked next run *)
            else begin
              let ledger = Flight.ledger_of_store store in
              let check_dates table bound what dedup =
                (* Dates in ascending order: the first offending date is the
                   one reported, independent of hash layout. *)
                Hashtbl.fold (fun date passengers acc -> (date, passengers) :: acc) table []
                |> List.sort (fun (d1, _) (d2, _) -> Int.compare d1 d2)
                |> List.fold_left
                     (fun acc (date, passengers) ->
                       let* () = acc in
                       if List.length passengers > bound then
                         Error
                           (Printf.sprintf "flight %d date %d %s: %d of %d"
                              (Runtime.guardian_id g) date what (List.length passengers) bound)
                       else if
                         dedup
                         && List.length (List.sort_uniq String.compare passengers)
                            <> List.length passengers
                       then
                         Error (Printf.sprintf "flight %d date %d has a duplicated passenger"
                                  (Runtime.guardian_id g) date)
                       else Ok ())
                     (Ok ())
              in
              let* () = check_dates (group_by_date ledger.Flight.reserved) capacity "overbooked" true in
              check_dates (group_by_date ledger.Flight.waitlisted) waitlist_capacity
                "waitlist overflow" false
            end)
          (Ok ()) flights);
  }

let itinerary_atomicity ~outcomes =
  {
    name = "itinerary_atomicity";
    check =
      (fun world ->
        let* stores = live_stores world ~def_name:Flight.def_name in
        let ledgers = List.map Flight.ledger_of_store stores in
        let passenger_sets =
          List.map
            (fun ledger ->
              let set = Hashtbl.create 32 in
              List.iter (fun (_date, p) -> Hashtbl.replace set p ()) ledger.Flight.reserved;
              set)
            ledgers
        in
        (* all-or-nothing: a passenger seen on any flight must be on all *)
        let* () =
          let passengers_of set =
            List.sort String.compare (Hashtbl.fold (fun p () acc -> p :: acc) set [])
          in
          List.fold_left
            (fun acc set ->
              let* () = acc in
              List.fold_left
                (fun acc passenger ->
                  let* () = acc in
                  if List.for_all (fun other -> Hashtbl.mem other passenger) passenger_sets then
                    Ok ()
                  else Error (Printf.sprintf "%s holds some legs but not all" passenger))
                acc (passengers_of set))
            (Ok ()) passenger_sets
        in
        (* every client told "booked" really holds its seats *)
        let* () =
          List.fold_left
            (fun acc (passenger, outcome) ->
              let* () = acc in
              if
                String.equal outcome "booked"
                && not (List.for_all (fun set -> Hashtbl.mem set passenger) passenger_sets)
              then Error (Printf.sprintf "%s was told booked but holds no seat" passenger)
              else Ok ())
            (Ok ()) !outcomes
        in
        let holds = List.fold_left (fun acc l -> acc + l.Flight.open_holds) 0 ledgers in
        if holds = 0 then Ok () else Error (Printf.sprintf "%d dangling holds" holds));
  }
