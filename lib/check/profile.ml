module Clock = Dcp_sim.Clock
module Link = Dcp_net.Link
module Disk = Dcp_stable.Disk

type t = {
  name : string;
  link : Link.t;
  crash_every : Clock.time option;
  crash_outage : Clock.time;
  max_concurrent_crashes : int;
  disk : Disk.spec option;
}

let base_links =
  [
    ("perfect", Link.perfect);
    ("lan", Link.lan);
    ("wan", Link.wan);
    ("lossy", Link.lossy 0.05);
    (* Long-haul latency and jitter combined with real loss: the replica
       convergence scenarios' home profile, and the harshest delivery model
       in the matrix. *)
    ("wan+lossy", { Link.wan with Link.loss = 0.05 });
  ]

let calm name link =
  {
    name;
    link;
    crash_every = None;
    crash_outage = Clock.zero;
    max_concurrent_crashes = 1;
    disk = None;
  }

let churning name link =
  {
    name = name ^ "+crash";
    link;
    crash_every = Some (Clock.ms 700);
    crash_outage = Clock.ms 400;
    max_concurrent_crashes = 1;
    disk = None;
  }

(* The third fault-matrix axis: flaky disks under the crash schedule.  The
   outage (1 s) deliberately exceeds the crash period (700 ms) so that with
   two concurrent victims allowed, recovery from disk damage routinely runs
   while a peer is still down — the overlapping-crash case the chaos
   scheduler used to forbid. *)
let diskful name link =
  {
    name = name ^ "+crash+disk";
    link;
    crash_every = Some (Clock.ms 700);
    crash_outage = Clock.ms 1000;
    max_concurrent_crashes = 2;
    disk = Some Disk.flaky;
  }

let all =
  List.map (fun (name, link) -> calm name link) base_links
  @ List.map (fun (name, link) -> churning name link) base_links
  @ List.map (fun (name, link) -> diskful name link) base_links

let names = List.map (fun p -> p.name) all
let find name = List.find_opt (fun p -> String.equal p.name name) all

let scale t ~intensity =
  let intensity = Float.min 1.0 (Float.max 0.0 intensity) in
  if intensity = 1.0 then t
  else
    let link =
      {
        t.link with
        Link.loss = t.link.Link.loss *. intensity;
        duplicate = t.link.Link.duplicate *. intensity;
        corrupt = t.link.Link.corrupt *. intensity;
      }
    in
    let crash_every =
      match t.crash_every with
      | None -> None
      | Some _ when intensity = 0.0 -> None
      | Some every -> Some (int_of_float (float_of_int every /. intensity))
    in
    let disk =
      match t.disk with
      | None -> None
      | Some _ when intensity = 0.0 -> None
      | Some d ->
          Some
            {
              d with
              Disk.stall_p = d.Disk.stall_p *. intensity;
              tear_p = d.Disk.tear_p *. intensity;
              drop_p = d.Disk.drop_p *. intensity;
              rot_p = d.Disk.rot_p *. intensity;
            }
    in
    { t with link; crash_every; disk }

let pp ppf t =
  Format.fprintf ppf "%s (loss %.3f, dup %.3f, corrupt %.3f%s%s)" t.name t.link.Link.loss
    t.link.Link.duplicate t.link.Link.corrupt
    (match t.crash_every with
    | None -> ", no crashes"
    | Some every ->
        Format.asprintf ", crash every ~%a for %a%s" Clock.pp every Clock.pp t.crash_outage
          (if t.max_concurrent_crashes > 1 then
             Printf.sprintf ", up to %d down" t.max_concurrent_crashes
           else ""))
    (match t.disk with
    | None -> ""
    | Some d -> Format.asprintf ", disk %a" Disk.pp d)
