module Clock = Dcp_sim.Clock
module Link = Dcp_net.Link

type t = {
  name : string;
  link : Link.t;
  crash_every : Clock.time option;
  crash_outage : Clock.time;
}

let base_links =
  [
    ("perfect", Link.perfect);
    ("lan", Link.lan);
    ("wan", Link.wan);
    ("lossy", Link.lossy 0.05);
    (* Long-haul latency and jitter combined with real loss: the replica
       convergence scenarios' home profile, and the harshest delivery model
       in the matrix. *)
    ("wan+lossy", { Link.wan with Link.loss = 0.05 });
  ]

let calm name link = { name; link; crash_every = None; crash_outage = Clock.zero }

let churning name link =
  { name = name ^ "+crash"; link; crash_every = Some (Clock.ms 700); crash_outage = Clock.ms 400 }

let all =
  List.map (fun (name, link) -> calm name link) base_links
  @ List.map (fun (name, link) -> churning name link) base_links

let names = List.map (fun p -> p.name) all
let find name = List.find_opt (fun p -> String.equal p.name name) all

let scale t ~intensity =
  let intensity = Float.min 1.0 (Float.max 0.0 intensity) in
  if intensity = 1.0 then t
  else
    let link =
      {
        t.link with
        Link.loss = t.link.Link.loss *. intensity;
        duplicate = t.link.Link.duplicate *. intensity;
        corrupt = t.link.Link.corrupt *. intensity;
      }
    in
    let crash_every =
      match t.crash_every with
      | None -> None
      | Some _ when intensity = 0.0 -> None
      | Some every -> Some (int_of_float (float_of_int every /. intensity))
    in
    { t with link; crash_every }

let pp ppf t =
  Format.fprintf ppf "%s (loss %.3f, dup %.3f, corrupt %.3f%s)" t.name t.link.Link.loss
    t.link.Link.duplicate t.link.Link.corrupt
    (match t.crash_every with
    | None -> ", no crashes"
    | Some every -> Format.asprintf ", crash every ~%a for %a" Clock.pp every Clock.pp t.crash_outage)
