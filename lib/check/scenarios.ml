open Dcp_wire
module Runtime = Dcp_core.Runtime
module Rpc = Dcp_primitives.Rpc
module Branch = Dcp_bank.Branch
module Transfer = Dcp_bank.Transfer
module Flight = Dcp_airline.Flight
module Itinerary = Dcp_airline.Itinerary
module Cluster = Dcp_airline.Cluster
module Workload = Dcp_airline.Workload
module Clock = Dcp_sim.Clock
module Engine = Dcp_sim.Engine
module Network = Dcp_net.Network
module Topology = Dcp_net.Topology
module Rng = Dcp_rng.Rng

(* The crash schedule draws from its own root, derived from the scenario
   seed, so fault timing is independent of the workload stream but still a
   pure function of the seed. *)
let chaos_rng seed = Rng.create ~seed:(seed lxor 0x2545F4914F6CDD1D)

(* Shared world config: the checker injects damage through the profile's
   disk axis, never through the legacy crash_tear_p knob (the two would
   double-count tears).  Checkpointing is only enabled alongside the disk
   injector — on perfect disks it would change store internals without
   changing behaviour, perturbing nothing but costing time. *)
let checkpoint_every = 100

let scenario_config (profile : Profile.t) =
  {
    Runtime.default_config with
    crash_tear_p = 0.0;
    disk = profile.Profile.disk;
    checkpoint_every =
      (if Option.is_none profile.Profile.disk then None else Some checkpoint_every);
  }

(* Aggregated across shards; for one shard these are exactly the single
   engine/network counters the historical fingerprints pinned. *)
let world_fingerprint world extra =
  let net = Runtime.network_stats world in
  Printf.sprintf "ev=%d sent=%d lost=%d%s" (Runtime.events_executed world)
    net.Network.messages_sent net.Network.fragments_lost extra

let verdict_of oracles world =
  match Oracle.check_all oracles world with
  | Ok () -> Scenario.Pass
  | Error reason -> Scenario.Fail reason

(* Disk-fault plane counters, appended to every scenario's stats: sweeps
   under a [+disk] profile use them as evidence that damage actually
   happened (a sweep that never salvaged or quarantined anything would
   vacuously pass). *)
let stable_stats world =
  let metric name =
    Dcp_sim.Metrics.count (Dcp_sim.Metrics.counter (Runtime.metrics world) name)
  in
  [
    ("stable_salvaged", metric "stable.salvaged");
    ("stable_quarantined", metric "stable.corrupt");
    ("stable_ckpt_fallbacks", metric "stable.ckpt_fallback");
    ("stable_dropped_unflushed", metric "stable.dropped_unflushed");
  ]

(* ---- bank: transfer sagas vs the sequential reference model ---- *)

let bank_accounts prefix = List.init 3 (fun i -> (Printf.sprintf "%s%d" prefix i, 500))

let bank_initial =
  List.concat_map
    (fun (branch, prefix) -> List.map (fun (a, v) -> (branch, a, v)) (bank_accounts prefix))
    [ (0, "a"); (1, "b") ]

let run_bank ~model_skips (params : Scenario.params) =
  let profile = params.profile in
  let config = scenario_config profile in
  let world =
    Runtime.create_world ~seed:params.seed
      ~topology:(Topology.full_mesh ~n:4 profile.Profile.link)
      ~config ~shards:params.shards ~parallel:params.parallel ()
  in
  let b0 = Branch.create world ~at:0 ~accounts:(bank_accounts "a") () in
  let b1 = Branch.create world ~at:1 ~accounts:(bank_accounts "b") () in
  let coordinator = Transfer.create world ~at:2 ~branches:[ b0; b1 ] () in
  let ledger = ref [] in
  let gap = Int.max (Clock.ms 5) (params.horizon / Int.max 1 params.workload) in
  Chaos.driver world ~at:3 ~name:"check_bank_driver" (fun ctx ->
      let rng = Rng.split (Runtime.ctx_rng ctx) in
      for i = 1 to params.workload do
        let tid = 4_000_000_000 + i in
        let forward = i mod 2 = 0 in
        let from_branch, to_branch = if forward then (0, 1) else (1, 0) in
        let prefix b = if b = 0 then "a" else "b" in
        let from_account = Printf.sprintf "%s%d" (prefix from_branch) (Rng.int rng 3) in
        let to_account = Printf.sprintf "%s%d" (prefix to_branch) (Rng.int rng 3) in
        let amount = 1 + Rng.int rng 40 in
        let entry =
          { Oracle.tid; from_branch; from_account; to_branch; to_account; amount; observed = "pending" }
        in
        ledger := entry :: !ledger;
        (match
           Rpc.call ctx ~to_:coordinator ~timeout:(Clock.s 2) ~attempts:3 ~request_id:tid
             "transfer"
             [
               Value.int from_branch;
               Value.str from_account;
               Value.int to_branch;
               Value.str to_account;
               Value.int amount;
             ]
         with
        | Rpc.Reply (command, _) -> entry.Oracle.observed <- command
        | Rpc.Failure_msg _ -> entry.Oracle.observed <- "failure"
        | Rpc.Timeout -> entry.Oracle.observed <- "timeout");
        Runtime.sleep ctx (gap + Rng.int rng (Int.max 1 (gap / 2)))
      done);
  Chaos.schedule_crashes world ~rng:(chaos_rng params.seed) ~profile ~nodes:[ 0; 1; 2 ]
    ~horizon:params.horizon;
  (* Settle bound: per transfer the driver blocks at most attempts×timeout
     plus pacing, and a parked deposit retries across outages; virtual
     time is free, so be generous. *)
  let settle = Clock.s 120 + (params.workload * Clock.s 8) in
  Runtime.run_for world (params.horizon + settle);
  let count outcome =
    List.length (List.filter (fun e -> String.equal e.Oracle.observed outcome) !ledger)
  in
  let ok = count "ok" and timeouts = count "timeout" in
  let verdict =
    if List.length !ledger < params.workload then
      Scenario.Fail
        (Printf.sprintf "driver issued only %d of %d transfers" (List.length !ledger)
           params.workload)
    else
      verdict_of
        [
          Oracle.bank_quiescent;
          Oracle.bank_conservation ~expected_total:3000;
          Oracle.bank_model ~initial:bank_initial ~ledger ~model_skips ();
          Oracle.stable_durability;
        ]
        world
  in
  {
    Scenario.verdict;
    fingerprint = world_fingerprint world (Printf.sprintf " ok=%d to=%d" ok timeouts);
    stats =
      [
        ("transfers_ok", ok);
        ("transfers_timeout", timeouts);
        ("events", Runtime.events_executed world);
      ]
      @ stable_stats world;
  }

let bank =
  {
    Scenario.name = "bank";
    descr = "cross-branch transfer sagas vs a sequential reference model";
    default_horizon = Clock.s 4;
    default_workload = 30;
    run = run_bank ~model_skips:0;
  }

let bank_mutated =
  {
    Scenario.name = "bank_mutated";
    descr = "bank with a model that ignores the first transfer (harness self-test; must fail)";
    default_horizon = Clock.s 4;
    default_workload = 30;
    run = run_bank ~model_skips:1;
  }

(* ---- airline: Figure-2 cluster under churn ---- *)

let airline_capacity = 5
let airline_waitlist = 10

let run_airline (params : Scenario.params) =
  let profile = params.profile in
  let cluster_params =
    {
      Cluster.default_params with
      regions = 3;
      flights_per_region = 2;
      capacity = airline_capacity;
      clerks_per_region = Int.max 1 params.workload;
      seed = params.seed;
      inter_node = profile.Profile.link;
      disk = profile.Profile.disk;
      checkpoint_every =
        (if Option.is_none profile.Profile.disk then None else Some checkpoint_every);
      clerk =
        {
          Workload.default_config with
          transactions = 0;
          requests_per_transaction = 4;
          think_time = Clock.ms 5;
          dates = 4;
          reserve_fraction = 0.7;
          undo_fraction = 0.1;
          request_timeout = Clock.ms 300;
          attempts = 3;
        };
    }
  in
  let cluster = Cluster.build cluster_params in
  let world = cluster.Cluster.world in
  Chaos.schedule_crashes world ~rng:(chaos_rng params.seed) ~profile ~nodes:[ 0; 1; 2 ]
    ~horizon:params.horizon;
  let report = Cluster.run cluster ~duration:(params.horizon + Clock.s 10) in
  let verdict =
    verdict_of
      [
        Oracle.airline_seat_ledger ~capacity:airline_capacity ~waitlist_capacity:airline_waitlist;
        Oracle.stable_durability;
      ]
      world
  in
  {
    Scenario.verdict;
    fingerprint =
      world_fingerprint world
        (Printf.sprintf " ok=%d failed=%d tx=%d" report.Cluster.requests_ok
           report.Cluster.requests_failed report.Cluster.transactions_completed);
    stats =
      [
        ("requests_ok", report.Cluster.requests_ok);
        ("requests_failed", report.Cluster.requests_failed);
        ("transactions_completed", report.Cluster.transactions_completed);
        ("events", Runtime.events_executed world);
      ]
      @ stable_stats world;
  }

let airline =
  {
    Scenario.name = "airline";
    descr = "Figure-2 airline cluster under clerk load; seat-ledger invariants";
    default_horizon = Clock.s 40;
    default_workload = 2;  (* clerks per region *)
    run = run_airline;
  }

(* ---- itinerary: two-leg 2PC bookings ---- *)

let run_itinerary (params : Scenario.params) =
  let profile = params.profile in
  let config = scenario_config profile in
  let world =
    Runtime.create_world ~seed:params.seed
      ~topology:(Topology.full_mesh ~n:4 profile.Profile.link)
      ~config ~shards:params.shards ~parallel:params.parallel ()
  in
  let f1 = Flight.create world ~at:0 ~flight:1 ~capacity:6 ~service_time:(Clock.us 100) () in
  let f2 = Flight.create world ~at:1 ~flight:2 ~capacity:6 ~service_time:(Clock.us 100) () in
  let itinerary = Itinerary.create world ~at:2 ~directory:[ (1, f1); (2, f2) ] () in
  let outcomes = ref [] in
  for i = 1 to params.workload do
    Chaos.driver world ~at:3 ~name:(Printf.sprintf "check_trip_driver_%d" i) (fun ctx ->
        let passenger = Printf.sprintf "px%d" i in
        let legs =
          Value.list
            [
              Value.tuple [ Value.int 1; Value.int (i mod 3) ];
              Value.tuple [ Value.int 2; Value.int (i mod 3) ];
            ]
        in
        (* Retry with the SAME request id so participant/coordinator logs
           keep retried attempts idempotent across crashes. *)
        let rid = 4_000_000_000 + i in
        let rec attempt tries =
          match
            Rpc.call ctx ~to_:itinerary ~timeout:(Clock.s 3) ~request_id:rid "book_trip"
              [ Value.str passenger; legs ]
          with
          | Rpc.Reply (command, _) -> outcomes := (passenger, command) :: !outcomes
          | Rpc.Failure_msg _ | Rpc.Timeout ->
              if tries > 1 then begin
                Runtime.sleep ctx (Clock.ms 500);
                attempt (tries - 1)
              end
              else outcomes := (passenger, "gave_up") :: !outcomes
        in
        attempt 4)
  done;
  Chaos.schedule_crashes world ~rng:(chaos_rng params.seed) ~profile ~nodes:[ 0; 1; 2 ]
    ~horizon:params.horizon;
  let settle = Clock.s 120 + (params.workload * Clock.s 15) in
  Runtime.run_for world (params.horizon + settle);
  let booked =
    List.length (List.filter (fun (_, o) -> String.equal o "booked") !outcomes)
  in
  let verdict =
    verdict_of [ Oracle.itinerary_atomicity ~outcomes; Oracle.stable_durability ] world
  in
  {
    Scenario.verdict;
    fingerprint = world_fingerprint world (Printf.sprintf " booked=%d" booked);
    stats =
      [
        ("booked", booked);
        ("outcomes", List.length !outcomes);
        ("events", Runtime.events_executed world);
      ]
      @ stable_stats world;
  }

let itinerary =
  {
    Scenario.name = "itinerary";
    descr = "two-leg 2PC bookings under churn; all-or-nothing atomicity";
    default_horizon = Clock.s 3;
    default_workload = 12;
    run = run_itinerary;
  }

(* ---- replica: anti-entropy gossip convergence at scale ---- *)

module Replica = Dcp_primitives.Replica
module Metrics = Dcp_sim.Metrics
module Store = Dcp_stable.Store

let replica_sync_every = Clock.ms 250
let replica_fanout = 2

(* Small enough that the workload's table needs several digest windows, so
   the sweep exercises cursor continuation, not just single-window sync. *)
let replica_budget = 2048

let run_replica ~replicas:n (params : Scenario.params) =
  let profile = params.profile in
  let config = scenario_config profile in
  let world =
    Runtime.create_world ~seed:params.seed
      ~topology:(Topology.full_mesh ~n:(n + 1) profile.Profile.link)
      ~config ~shards:params.shards ~parallel:params.parallel ()
  in
  let nodes = List.init n Fun.id in
  let ports =
    Array.of_list
      (Replica.create_group world ~nodes ~sync_every:replica_sync_every
         ~fanout:replica_fanout ~byte_budget:replica_budget ())
  in
  let written = ref 0 in
  let gap = Int.max (Clock.ms 2) (params.horizon / Int.max 1 params.workload) in
  Chaos.driver world ~at:n ~name:"check_replica_driver" (fun ctx ->
      let rng = Rng.split (Runtime.ctx_rng ctx) in
      Runtime.sleep ctx (Clock.ms 100);
      for i = 1 to params.workload do
        let key = Printf.sprintf "key%04d" i in
        let replica = ports.(Rng.int rng n) in
        (* Pinned request ids: generated ones come from a process-global
           counter and would break run-to-run fingerprint determinism. *)
        (match
           Rpc.call ctx ~to_:replica ~timeout:(Clock.ms 500) ~attempts:3
             ~request_id:(4_000_000_000 + i) "write"
             [ Value.str key; Value.int i ]
         with
        | Rpc.Reply ("written", _) -> incr written
        | Rpc.Reply _ | Rpc.Failure_msg _ | Rpc.Timeout -> ());
        Runtime.sleep ctx (gap + Rng.int rng (Int.max 1 (gap / 2)))
      done);
  Chaos.schedule_crashes world ~rng:(chaos_rng params.seed) ~profile ~nodes
    ~horizon:params.horizon;
  Runtime.run_for world (params.horizon + Clock.s 5);
  (* Quiescence probe: step virtual time until every live table agrees.
     The virtual time elapsed past the fault horizon when agreement first
     holds is the convergence-time measurement; LWW tables are monotone in
     stamp order and the workload has stopped, so once equal they stay
     equal. *)
  let step = Clock.ms 250 in
  let max_steps = 400 in
  let converged () = Result.is_ok (Oracle.check_all [ Oracle.replica_convergence ] world) in
  let rec probe i =
    if converged () then true
    else if i >= max_steps then false
    else begin
      Runtime.run_for world step;
      probe (i + 1)
    end
  in
  let convergence_ms =
    if probe 0 then (Runtime.now world - params.horizon) / Clock.ms 1 else -1
  in
  let keys =
    match Runtime.find_guardians world ~def_name:Replica.def_name with
    | [] -> 0
    | g :: _ -> List.length (Replica.table_in_store (Runtime.guardian_store g))
  in
  let metric name = Metrics.count (Metrics.counter (Runtime.metrics world) name) in
  let sync_msgs = metric Replica.metric_sync_msgs in
  let sync_bytes = metric Replica.metric_sync_bytes in
  let verdict =
    if !written = 0 then Scenario.Fail "no write was acknowledged"
    else
      verdict_of
        [
          Oracle.replica_convergence;
          Oracle.replica_sync_budget ~budget:replica_budget;
          Oracle.stable_durability;
        ]
        world
  in
  {
    Scenario.verdict;
    fingerprint =
      world_fingerprint world
        (Printf.sprintf " keys=%d conv=%d sync=%d" keys convergence_ms sync_bytes);
    stats =
      [
        ("keys", keys);
        ("written", !written);
        ("convergence_ms", convergence_ms);
        ("sync_msgs", sync_msgs);
        ("sync_bytes", sync_bytes);
        ("malformed", metric Replica.metric_malformed);
        ("events", Runtime.events_executed world);
      ]
      @ stable_stats world;
  }

let replica =
  {
    Scenario.name = "replica";
    descr = "100-replica anti-entropy gossip; convergence and sync byte budget";
    default_horizon = Clock.s 8;
    default_workload = 150;
    run = run_replica ~replicas:100;
  }

let replica_1k =
  {
    Scenario.name = "replica_1k";
    descr = "1000-replica anti-entropy gossip (scale probe; not in the default sweep)";
    default_horizon = Clock.s 6;
    default_workload = 200;
    run = run_replica ~replicas:1000;
  }

(* ---- register / snapshot: SCD-broadcast atomic objects ---- *)

module Register = Dcp_primitives.Register
module Snapshot = Dcp_primitives.Snapshot
module Scd = Dcp_primitives.Scd

let register_status_every = Clock.ms 100
let register_op_timeout = Clock.ms 1500
let register_client_def = "scd_register_client"
let snapshot_client_def = "scd_snapshot_client"

(* Spread [workload] operations over [clients] drivers. *)
let split_workload ~clients workload =
  List.init clients (fun i -> (workload / clients) + if i < workload mod clients then 1 else 0)

type op_counts = {
  mutable ok : int;  (** completed with a reply *)
  mutable unknown : int;  (** timed out: effect unknown, recorded pending *)
  mutable no_effect : int;  (** refused/failed before execution: not recorded *)
}

(* One history-recording client: every completed or timed-out operation
   goes into the driver's own stable store ({!Linearize.record}), making
   the linearizability oracle a pure function of the finished world.
   Calls are single-attempt — a retry would re-execute under the same rid
   (answered from the durable request record, fine) but a {e fresh} rid
   would re-broadcast the write and break the history; timeout means
   "pending", never "retry". *)
let run_client ctx ~counts ~rng ~ports ~keys ~write_pct ~use_snapshots ~idx ~count ~gap =
  let members = Array.length ports in
  let recorded = ref 0 in
  let record event =
    Linearize.record ctx ~seq:!recorded event;
    incr recorded
  in
  Runtime.sleep ctx (Clock.ms 120);
  for i = 1 to count do
    let member = ports.(Rng.int rng members) in
    let key = Printf.sprintf "x%d" (Rng.int rng keys) in
    let value = (idx * 1_000_000) + i in
    let rid = 4_000_000_000 + (idx * 1_000_000) + i in
    let roll = Rng.int rng 100 in
    let op, command, args =
      if roll < write_pct then
        ( Linearize.Write (key, value),
          (if use_snapshots then "update" else "write"),
          [ Value.str key; Value.int value ] )
      else if use_snapshots then (Linearize.Snapshot, "snapshot", [])
      else (Linearize.Read key, "read", [ Value.str key ])
    in
    let inv = Runtime.ctx_now ctx in
    let outcome =
      Rpc.call ctx ~to_:member ~timeout:register_op_timeout ~attempts:1 ~request_id:rid
        command args
    in
    let resp = Runtime.ctx_now ctx in
    let finish reply =
      counts.ok <- counts.ok + 1;
      record { Linearize.client = idx; op; reply = Some reply; inv; resp }
    in
    (match (op, outcome) with
    | Linearize.Write _, Rpc.Reply ("written", []) | Linearize.Write _, Rpc.Reply ("updated", [])
      ->
        finish Linearize.Acked
    | Linearize.Read _, Rpc.Reply ("value", [ Value.Int v ]) ->
        finish (Linearize.Value_is (Some v))
    | Linearize.Read _, Rpc.Reply ("unknown_key", []) -> finish (Linearize.Value_is None)
    | Linearize.Snapshot, Rpc.Reply ("state", [ Value.Listv entries ]) -> (
        let parsed =
          List.fold_left
            (fun acc v ->
              match (acc, v) with
              | Some parsed, Value.Tuple [ Value.Str k; Value.Int v ] -> Some ((k, v) :: parsed)
              | _, _ -> None)
            (Some []) entries
        in
        match parsed with
        | Some entries -> finish (Linearize.State_is (List.rev entries))
        | None -> counts.no_effect <- counts.no_effect + 1)
    | _, Rpc.Timeout ->
        (* Post-timeout uncertainty (§3.5): the op may or may not have taken
           effect; the checker treats it as pending. *)
        counts.unknown <- counts.unknown + 1;
        record { Linearize.client = idx; op; reply = None; inv; resp = max_int }
    | _, (Rpc.Reply _ | Rpc.Failure_msg _) ->
        (* not_ready, or the request was discarded before reaching the
           member: guaranteed no effect, excluded from the history. *)
        counts.no_effect <- counts.no_effect + 1);
    Runtime.sleep ctx (gap + Rng.int rng (Int.max 1 (gap / 2)))
  done

let install_clients world ~def_name ~at ~ports ~keys ~write_pct ~use_snapshots ~counts
    ~workload ~clients ~horizon =
  let def : Runtime.def =
    {
      Runtime.def_name;
      provides = [ ([ Vtype.wildcard ], 64) ];
      init =
        (fun ctx args ->
          match args with
          | [ Value.Int idx; Value.Int count ] ->
              let rng = Rng.split (Runtime.ctx_rng ctx) in
              let gap = Int.max (Clock.ms 10) (horizon / Int.max 1 count) in
              run_client ctx ~counts ~rng ~ports ~keys ~write_pct ~use_snapshots ~idx ~count
                ~gap
          | _ -> invalid_arg (def_name ^ ": bad creation arguments"));
      recover = None;
    }
  in
  Runtime.register_def world def;
  List.iteri
    (fun idx count ->
      ignore
        (Runtime.create_guardian world ~at ~def_name
           ~args:[ Value.int idx; Value.int count ]))
    (split_workload ~clients workload)

let scd_outcome ~params ~world ~object_def ~client_def ~counts ~issued =
  (* Quiescence probe, as in [run_replica]: step until every member's
     durable table agrees, measuring convergence past the fault horizon. *)
  let step = Clock.ms 250 in
  let max_steps = 200 in
  let converged () =
    Result.is_ok (Oracle.check_all [ Oracle.table_convergence ~def_name:object_def ] world)
  in
  let rec probe i =
    if converged () then true
    else if i >= max_steps then false
    else begin
      Runtime.run_for world step;
      probe (i + 1)
    end
  in
  let convergence_ms =
    if probe 0 then (Runtime.now world - params.Scenario.horizon) / Clock.ms 1 else -1
  in
  let metric name = Metrics.count (Metrics.counter (Runtime.metrics world) name) in
  let keys =
    match Runtime.find_guardians world ~def_name:object_def with
    | [] -> 0
    | g :: _ -> List.length (Register.Table.in_store (Runtime.guardian_store g))
  in
  let verdict =
    if issued < params.Scenario.workload then
      Scenario.Fail
        (Printf.sprintf "drivers issued only %d of %d operations" issued
           params.Scenario.workload)
    else
      verdict_of
        [
          Oracle.linearizable ~clients:client_def ();
          Oracle.table_convergence ~def_name:object_def;
          Oracle.stable_durability;
        ]
        world
  in
  {
    Scenario.verdict;
    fingerprint =
      world_fingerprint world
        (Printf.sprintf " ok=%d unk=%d ne=%d conv=%d" counts.ok counts.unknown
           counts.no_effect convergence_ms);
    stats =
      [
        ("ops_ok", counts.ok);
        ("ops_unknown", counts.unknown);
        ("ops_no_effect", counts.no_effect);
        ("keys", keys);
        ("convergence_ms", convergence_ms);
        ("scd_msgs", metric Scd.metric_msgs);
        ("scd_sets", metric Scd.metric_sets);
        ("malformed", metric Scd.metric_malformed + metric Register.metric_malformed);
        ("events", Runtime.events_executed world);
      ]
      @ stable_stats world;
  }

let register_members = 5
let register_keys = 4
let register_client_count = 4

let run_register ~stale_reads (params : Scenario.params) =
  let profile = params.profile in
  let config = scenario_config profile in
  let world =
    Runtime.create_world ~seed:params.seed
      ~topology:(Topology.full_mesh ~n:(register_members + 1) profile.Profile.link)
      ~config ~shards:params.shards ~parallel:params.parallel ()
  in
  let nodes = List.init register_members Fun.id in
  let ports =
    Array.of_list
      (Register.create_group world ~nodes ~status_every:register_status_every ~stale_reads
         ~introduce_at:register_members ())
  in
  let counts = { ok = 0; unknown = 0; no_effect = 0 } in
  install_clients world ~def_name:register_client_def ~at:register_members ~ports
    ~keys:register_keys ~write_pct:55 ~use_snapshots:false ~counts ~workload:params.workload
    ~clients:register_client_count ~horizon:params.horizon;
  Chaos.schedule_crashes world ~rng:(chaos_rng params.seed) ~profile ~nodes
    ~horizon:params.horizon;
  (* Settle bound: each op blocks at most one 1.5 s timeout plus pacing,
     drivers run concurrently, and the last delivery needs a status round
     past the last crash; virtual time is free. *)
  Runtime.run_for world (params.horizon + Clock.s 60);
  scd_outcome ~params ~world ~object_def:Register.def_name ~client_def:register_client_def
    ~counts
    ~issued:(counts.ok + counts.unknown + counts.no_effect)

let register =
  {
    Scenario.name = "register";
    descr = "SCD-broadcast atomic registers under churn; linearizability of client histories";
    default_horizon = Clock.s 4;
    default_workload = 48;
    run = run_register ~stale_reads:false;
  }

let register_mutated =
  {
    Scenario.name = "register_mutated";
    descr =
      "register without delivery barriers: fast-acked writes, stale local reads (harness self-test; must fail)";
    default_horizon = Clock.s 4;
    default_workload = 48;
    run = run_register ~stale_reads:true;
  }

let snapshot_members = 4
let snapshot_keys = 3
let snapshot_client_count = 3

let run_snapshot (params : Scenario.params) =
  let profile = params.profile in
  let config = scenario_config profile in
  let world =
    Runtime.create_world ~seed:params.seed
      ~topology:(Topology.full_mesh ~n:(snapshot_members + 1) profile.Profile.link)
      ~config ~shards:params.shards ~parallel:params.parallel ()
  in
  let nodes = List.init snapshot_members Fun.id in
  let ports =
    Array.of_list
      (Snapshot.create_group world ~nodes ~status_every:register_status_every
         ~introduce_at:snapshot_members ())
  in
  let counts = { ok = 0; unknown = 0; no_effect = 0 } in
  install_clients world ~def_name:snapshot_client_def ~at:snapshot_members ~ports
    ~keys:snapshot_keys ~write_pct:60 ~use_snapshots:true ~counts ~workload:params.workload
    ~clients:snapshot_client_count ~horizon:params.horizon;
  Chaos.schedule_crashes world ~rng:(chaos_rng params.seed) ~profile ~nodes
    ~horizon:params.horizon;
  Runtime.run_for world (params.horizon + Clock.s 60);
  scd_outcome ~params ~world ~object_def:Snapshot.def_name ~client_def:snapshot_client_def
    ~counts
    ~issued:(counts.ok + counts.unknown + counts.no_effect)

let snapshot =
  {
    Scenario.name = "snapshot";
    descr = "SCD-broadcast snapshot object under churn; atomic whole-state views";
    default_horizon = Clock.s 4;
    default_workload = 24;
    run = run_snapshot;
  }

let all = [ bank; airline; itinerary; replica; register; snapshot ]
let every = all @ [ bank_mutated; replica_1k; register_mutated ]
let find name = List.find_opt (fun s -> String.equal s.Scenario.name name) every
let names = List.map (fun s -> s.Scenario.name) every
