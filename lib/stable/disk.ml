module Rng = Dcp_rng.Rng

type spec = {
  stall_p : float;
  stall_ms : int;
  tear_p : float;
  drop_p : float;
  rot_p : float;
  sector_p : float;
}

let none = { stall_p = 0.; stall_ms = 0; tear_p = 0.; drop_p = 0.; rot_p = 0.; sector_p = 0. }
let flaky = { stall_p = 0.05; stall_ms = 5; tear_p = 0.5; drop_p = 0.25; rot_p = 0.3; sector_p = 0. }
let hostile = { flaky with sector_p = 1. }

let is_none s =
  s.stall_p = 0. && s.tear_p = 0. && s.drop_p = 0. && s.rot_p = 0.

let pp ppf s =
  Format.fprintf ppf "stall=%.2f/%dms tear=%.2f drop=%.2f rot=%.2f sector=%.2f" s.stall_p
    s.stall_ms s.tear_p s.drop_p s.rot_p s.sector_p

type t = { spec : spec; rng : Rng.t }

let create spec rng = { spec; rng }
let spec t = t.spec

let draw_stall t =
  if t.spec.stall_p > 0. && Rng.bernoulli t.rng t.spec.stall_p then
    Some (Rng.int_in t.rng 1 (Int.max 1 t.spec.stall_ms))
  else None

let draw_drop t = t.spec.drop_p > 0. && Rng.bernoulli t.rng t.spec.drop_p

let draw_tear t = t.spec.tear_p > 0. && Rng.bernoulli t.rng t.spec.tear_p

let draw_rot t ~targets =
  if targets > 0 && t.spec.rot_p > 0. && Rng.bernoulli t.rng t.spec.rot_p then begin
    let victim = Rng.int t.rng targets in
    let sector = t.spec.sector_p > 0. && Rng.bernoulli t.rng t.spec.sector_p in
    Some (victim, sector)
  end
  else None

let draw_byte t ~len = Rng.int t.rng len
