(** Write-ahead log on simulated stable storage.

    §2.2: "processes in the guardian save recovery data as needed (by, e.g.,
    logging it in storage that will survive a node crash), and the guardian
    provides a recovery process that is started after a node crash to
    interpret the recovery data."

    A [Wal.t] models that crash-surviving storage.  Records are appended
    with a sequence number (LSN) and a CRC.  A node crash may tear the
    record being written at the instant of the crash ({!tear_tail}); replay
    verifies CRCs and stops at the first damaged record, so a torn tail is
    indistinguishable from the record never having been written — which is
    exactly the atomicity a log gives real systems. *)

type t

type lsn = int

val create : unit -> t

val append : t -> string -> lsn
(** Durably append a record; returns its LSN (0-based, dense).  Amortized
    O(1). *)

val length : t -> int
(** Number of intact records.  Each record's CRC is verified at most once
    across the log's lifetime (a verified-prefix cache), so reads after
    the first are O(1) per already-verified record. *)

val replay : t -> (lsn -> string -> unit) -> unit
(** Apply every intact record in LSN order. *)

val records : t -> string list

val truncate_prefix : t -> upto:lsn -> unit
(** Discard records with LSN < [upto] (checkpointing).  Replay still reports
    original LSNs. *)

val first_lsn : t -> lsn
val next_lsn : t -> lsn

val repair : t -> int
(** Physically truncate the log at the first damaged record (recovery-time
    repair, as a real implementation would): later appends then extend an
    intact log instead of sitting unreachable behind the tear.  Returns the
    number of records dropped. *)

val tear_tail : t -> Dcp_rng.Rng.t -> p:float -> bool
(** Crash-time damage model: with probability [p], corrupt the final record
    (as if the crash interrupted its write).  Returns whether a tear
    happened.  Replay will then stop before the damaged record. *)

val storage_bytes : t -> int
(** Total payload bytes held, for accounting. *)
