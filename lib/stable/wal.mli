(** Write-ahead log on simulated stable storage.

    §2.2: "processes in the guardian save recovery data as needed (by, e.g.,
    logging it in storage that will survive a node crash), and the guardian
    provides a recovery process that is started after a node crash to
    interpret the recovery data."

    A [Wal.t] models that crash-surviving storage.  Records are appended
    with a sequence number (LSN) and a CRC.  Appends are volatile until
    {!flush} (the runtime flushes before any message leaves the node, so
    externalized state is always flush-protected); a crash may tear or drop
    un-flushed records, and bit rot may damage flushed ones (see {!Disk}).
    Flushing also mirrors each record — the model of a paired journal copy —
    so a single rotted byte is salvageable at recovery.

    Reads verify CRCs and {e quarantine} damaged records: a bad record is
    skipped, never replayed and never allowed to hide the intact suffix
    behind it.  {!scrub} is the recovery-time pass that makes quarantine
    physical — salvaging rotted records from their mirrors and dropping the
    unrecoverable ones — after which the log is fully intact again. *)

type t

type lsn = int

val create : unit -> t

val append : t -> string -> lsn
(** Durably append a record; returns its LSN (0-based, increasing; dense
    until a crash drops an un-flushed suffix, which burns the dropped
    LSNs).  Amortized O(1). *)

val length : t -> int
(** Number of intact records.  Each record's CRC is verified at most once
    across the log's lifetime (a verified-prefix cache) while the log is
    undamaged; records sitting after a damaged one are re-checked per call
    until {!scrub} compacts them back into the prefix. *)

val replay : t -> (lsn -> string -> unit) -> unit
(** Apply every intact record in LSN order, skipping damaged ones. *)

val replay_from : t -> lsn:lsn -> (lsn -> string -> unit) -> unit
(** [replay_from t ~lsn f] replays only intact records with LSN >= [lsn]
    (checkpoint recovery: the suffix not covered by the snapshot).  Finds
    the start by binary search — O(log n + suffix). *)

val records : t -> string list

val truncate_prefix : t -> upto:lsn -> unit
(** Discard records with LSN < [upto] (checkpointing).  Replay still reports
    original LSNs. *)

val first_lsn : t -> lsn
val next_lsn : t -> lsn

val flush : t -> unit
(** Mark every current record flushed: crash-time tears and drops can no
    longer touch them, and each gains a mirror copy for rot salvage.
    O(new records since the last flush); a no-op when nothing is pending. *)

val flushed_count : t -> int
(** Records in the flushed prefix. *)

val unflushed : t -> int
(** Records appended since the last {!flush}. *)

type scrub_report = { salvaged : int; quarantined : int }

val scrub : t -> scrub_report
(** Recovery-time integrity pass: every damaged record is restored from its
    mirror when the mirror still matches the CRC ([salvaged]), and
    physically dropped otherwise ([quarantined]).  Intact records —
    including those after a quarantined one — always survive.  Never
    raises; afterwards the log verifies end to end. *)

(** {1 Crash-time damage} — called by {!Store.crash}, driven by {!Disk}
    draws or the legacy tear probability. *)

val tear_tail : t -> Dcp_rng.Rng.t -> p:float -> bool
(** Legacy damage model: with probability [p], corrupt the final record
    (as if the crash interrupted its write).  Returns whether a tear
    happened.  Draws once whenever the log is non-empty, flushed or not —
    pinned fingerprints depend on that draw count. *)

val tear_unflushed : t -> bool
(** Corrupt the last record iff it is un-flushed (a torn in-flight write).
    Returns whether a tear happened; draws nothing. *)

val drop_unflushed : t -> int
(** Lose the whole un-flushed suffix (it never reached the platter).
    Returns how many records vanished. *)

val rot_record : t -> Disk.t -> index:int -> sector:bool -> unit
(** Flip one byte of flushed record [index] (the victim byte drawn from the
    disk's stream).  With [sector], the mirror is destroyed too, making the
    record unsalvageable. *)

val storage_bytes : t -> int
(** Total payload bytes held, for accounting. *)
