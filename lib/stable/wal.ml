module Crc32 = Dcp_net.Crc32

type lsn = int

type record = {
  lsn : lsn;
  mutable payload : string;
  mutable crc : int32;
  mutable mirror : string option;  (** set at flush; aliases the payload until rot copies it *)
}

(* Records live oldest-first in a growable array, so [append] is amortized
   O(1).  [verified] counts the prefix of entries whose CRCs have already
   been checked intact; readers extend it instead of re-digesting the whole
   log, so [length]/[replay]/[records] cost one digest per *new* record
   overall.  Records past a damaged one are quarantine-skipped and
   re-checked per read until [scrub] drops the damage and folds them back
   into the verified prefix — damage only exists between a crash and the
   recovery scrub, so the steady state stays O(1) per call.

   [flushed] is the length of the flushed prefix: flush marks every current
   record, appends land after it, and truncation removes from the front, so
   flushed records always form a prefix. *)
type t = {
  mutable entries : record array;  (** slots [0, len) live, oldest first *)
  mutable len : int;
  mutable verified : int;
  mutable flushed : int;
  mutable payload_bytes : int;  (** over all live entries, damaged or not *)
  mutable first : lsn;
  mutable next : lsn;
}

let dummy = { lsn = -1; payload = ""; crc = 0l; mirror = None }

let create () =
  {
    entries = Array.make 8 dummy;
    len = 0;
    verified = 0;
    flushed = 0;
    payload_bytes = 0;
    first = 0;
    next = 0;
  }

let append t payload =
  let lsn = t.next in
  t.next <- lsn + 1;
  if t.len = Array.length t.entries then begin
    let bigger = Array.make (2 * Array.length t.entries) dummy in
    Array.blit t.entries 0 bigger 0 t.len;
    t.entries <- bigger
  end;
  t.entries.(t.len) <- { lsn; payload; crc = Crc32.digest_string payload; mirror = None };
  t.len <- t.len + 1;
  t.payload_bytes <- t.payload_bytes + String.length payload;
  lsn

let intact r = Int32.equal r.crc (Crc32.digest_string r.payload)

(* Extend the verified prefix: the records replay can emit without
   re-checking.  Stops at the first damaged record. *)
let verify t =
  while t.verified < t.len && intact t.entries.(t.verified) do
    t.verified <- t.verified + 1
  done;
  t.verified

(* Iterate intact records with index >= [from], skipping damaged ones.
   The verified prefix is free; past it the first record is known damaged
   and the rest are re-checked (only possible between crash and scrub). *)
let iter_live_from t from f =
  let n = verify t in
  for i = from to n - 1 do
    f t.entries.(i)
  done;
  if n < t.len then
    for i = Int.max from (n + 1) to t.len - 1 do
      let r = t.entries.(i) in
      if intact r then f r
    done

let length t =
  let n = ref 0 in
  iter_live_from t 0 (fun _ -> incr n);
  !n

let replay t f = iter_live_from t 0 (fun r -> f r.lsn r.payload)

(* First index holding LSN >= [lsn]; entries are LSN-sorted. *)
let start_index t ~lsn =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.entries.(mid).lsn < lsn then lo := mid + 1 else hi := mid
  done;
  !lo

let replay_from t ~lsn f =
  iter_live_from t (start_index t ~lsn) (fun r -> f r.lsn r.payload)

let records t =
  let acc = ref [] in
  iter_live_from t 0 (fun r -> acc := r.payload :: !acc);
  List.rev !acc

let truncate_prefix t ~upto =
  (* entries are in increasing-lsn order, so this removes a prefix *)
  let k = ref 0 in
  while !k < t.len && t.entries.(!k).lsn < upto do
    t.payload_bytes <- t.payload_bytes - String.length t.entries.(!k).payload;
    incr k
  done;
  let k = !k in
  if k > 0 then begin
    Array.blit t.entries k t.entries 0 (t.len - k);
    Array.fill t.entries (t.len - k) k dummy;
    t.len <- t.len - k;
    t.verified <- Int.max 0 (t.verified - k);
    t.flushed <- Int.max 0 (t.flushed - k)
  end;
  t.first <- Int.max t.first upto

let first_lsn t = t.first
let next_lsn t = t.next

let flush t =
  while t.flushed < t.len do
    let r = t.entries.(t.flushed) in
    r.mirror <- Some r.payload;
    t.flushed <- t.flushed + 1
  done

let flushed_count t = t.flushed
let unflushed t = t.len - t.flushed

type scrub_report = { salvaged : int; quarantined : int }

let scrub t =
  let salvaged = ref 0 and quarantined = ref 0 in
  let keep = ref 0 and kept_flushed = ref 0 in
  for i = 0 to t.len - 1 do
    let r = t.entries.(i) in
    let ok =
      if intact r then true
      else
        match r.mirror with
        | Some m when Int32.equal r.crc (Crc32.digest_string m) ->
            r.payload <- m;
            incr salvaged;
            true
        | _ ->
            t.payload_bytes <- t.payload_bytes - String.length r.payload;
            incr quarantined;
            false
    in
    if ok then begin
      if i < t.flushed then incr kept_flushed;
      t.entries.(!keep) <- r;
      incr keep
    end
  done;
  if !keep < t.len then Array.fill t.entries !keep (t.len - !keep) dummy;
  t.len <- !keep;
  t.verified <- !keep;
  t.flushed <- !kept_flushed;
  { salvaged = !salvaged; quarantined = !quarantined }

let tear_tail t rng ~p =
  if t.len = 0 then false
  else if Dcp_rng.Rng.bernoulli rng p then begin
    let last = t.len - 1 in
    let r = t.entries.(last) in
    r.crc <- Int32.lognot r.crc;
    t.verified <- Int.min t.verified last;
    true
  end
  else false

let tear_unflushed t =
  if t.len > t.flushed then begin
    let last = t.len - 1 in
    let r = t.entries.(last) in
    r.crc <- Int32.lognot r.crc;
    t.verified <- Int.min t.verified last;
    true
  end
  else false

let drop_unflushed t =
  let dropped = t.len - t.flushed in
  if dropped > 0 then begin
    for i = t.flushed to t.len - 1 do
      t.payload_bytes <- t.payload_bytes - String.length t.entries.(i).payload
    done;
    Array.fill t.entries t.flushed dropped dummy;
    t.len <- t.flushed;
    t.verified <- Int.min t.verified t.flushed
  end;
  dropped

let rot_record t disk ~index ~sector =
  let r = t.entries.(index) in
  if String.length r.payload > 0 then begin
    let b = Bytes.of_string r.payload in
    let pos = Disk.draw_byte disk ~len:(Bytes.length b) in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
    (* replace, never mutate: the mirror aliases the original string *)
    r.payload <- Bytes.to_string b
  end
  else r.crc <- Int32.lognot r.crc;
  if sector then r.mirror <- None;
  t.verified <- Int.min t.verified index

let storage_bytes t = t.payload_bytes + (12 * t.len)
