module Crc32 = Dcp_net.Crc32

type lsn = int

type record = { lsn : lsn; payload : string; crc : int32 }

(* Records live oldest-first in a growable array, so [append] is amortized
   O(1).  [verified] counts the prefix of entries whose CRCs have already
   been checked intact; readers extend it instead of re-digesting the whole
   log, so [length]/[replay]/[records] cost one digest per *new* record
   overall.  The only operation that can invalidate a previously verified
   entry is [tear_tail] (it damages the newest record), which pulls
   [verified] back below the damaged index; a damaged record itself is
   never cached as verified and is re-checked on each read — O(1) per call. *)
type t = {
  mutable entries : record array;  (** slots [0, len) live, oldest first *)
  mutable len : int;
  mutable verified : int;
  mutable payload_bytes : int;  (** over all live entries, damaged or not *)
  mutable first : lsn;
  mutable next : lsn;
}

let dummy = { lsn = -1; payload = ""; crc = 0l }

let create () =
  { entries = Array.make 8 dummy; len = 0; verified = 0; payload_bytes = 0; first = 0; next = 0 }

let append t payload =
  let lsn = t.next in
  t.next <- lsn + 1;
  if t.len = Array.length t.entries then begin
    let bigger = Array.make (2 * Array.length t.entries) dummy in
    Array.blit t.entries 0 bigger 0 t.len;
    t.entries <- bigger
  end;
  t.entries.(t.len) <- { lsn; payload; crc = Crc32.digest_string payload };
  t.len <- t.len + 1;
  t.payload_bytes <- t.payload_bytes + String.length payload;
  lsn

let intact r = Int32.equal r.crc (Crc32.digest_string r.payload)

(* Extend the verified prefix and return its length: the number of records
   replay can see.  A damaged record hides everything after it, exactly as
   garbage mid-file does in an on-disk log. *)
let verify t =
  while t.verified < t.len && intact t.entries.(t.verified) do
    t.verified <- t.verified + 1
  done;
  t.verified

let length t = verify t

let replay t f =
  let n = verify t in
  for i = 0 to n - 1 do
    let r = t.entries.(i) in
    f r.lsn r.payload
  done

let records t = List.init (verify t) (fun i -> t.entries.(i).payload)

let truncate_prefix t ~upto =
  (* entries are in increasing-lsn order, so this removes a prefix *)
  let k = ref 0 in
  while !k < t.len && t.entries.(!k).lsn < upto do
    t.payload_bytes <- t.payload_bytes - String.length t.entries.(!k).payload;
    incr k
  done;
  let k = !k in
  if k > 0 then begin
    Array.blit t.entries k t.entries 0 (t.len - k);
    Array.fill t.entries (t.len - k) k dummy;
    t.len <- t.len - k;
    t.verified <- Int.max 0 (t.verified - k)
  end;
  t.first <- Int.max t.first upto

let first_lsn t = t.first
let next_lsn t = t.next

let repair t =
  let n = verify t in
  let dropped = t.len - n in
  if dropped > 0 then begin
    for i = n to t.len - 1 do
      t.payload_bytes <- t.payload_bytes - String.length t.entries.(i).payload
    done;
    Array.fill t.entries n dropped dummy;
    t.len <- n
  end;
  dropped

let tear_tail t rng ~p =
  if t.len = 0 then false
  else if Dcp_rng.Rng.bernoulli rng p then begin
    let last = t.len - 1 in
    let r = t.entries.(last) in
    t.entries.(last) <- { r with crc = Int32.lognot r.crc };
    t.verified <- Int.min t.verified last;
    true
  end
  else false

let storage_bytes t = t.payload_bytes + (12 * t.len)
