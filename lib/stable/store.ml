(* Log records are "S<klen>:<key><value>" for set and "R<key>" for remove;
   a checkpoint is the whole table behind one CRC frame (see Checkpoint).
   All framing is length-prefixed so keys and values may contain any
   byte. *)

type ckpt = { upto : Wal.lsn; mutable blob : string }

type t = {
  mutable table : (string, string) Hashtbl.t;
  mutable checkpoints : ckpt list;  (** newest first; at most two generations *)
  wal : Wal.t;
  mutable crashed : bool;
  disk : Disk.t option;
  mutable on_stall : int -> unit;
  checkpoint_every : int option;
  mutable since_ckpt : int;
  mutable pending_dropped : int;  (** un-flushed records the last crash destroyed *)
}

let create ?disk ?checkpoint_every () =
  {
    table = Hashtbl.create 64;
    checkpoints = [];
    wal = Wal.create ();
    crashed = false;
    disk = Option.map (fun (spec, rng) -> Disk.create spec rng) disk;
    on_stall = ignore;
    checkpoint_every;
    since_ckpt = 0;
    pending_dropped = 0;
  }

let set_stall_handler t f = t.on_stall <- f

let encode_set ~key value =
  Printf.sprintf "S%d:%s%s" (String.length key) key value

let encode_remove ~key = Printf.sprintf "R%d:%s" (String.length key) key

let decode record =
  let fail () = invalid_arg "Store: malformed log record" in
  if String.length record < 2 then fail ();
  let op = record.[0] in
  match String.index_opt record ':' with
  | None -> fail ()
  | Some colon ->
      let klen = int_of_string (String.sub record 1 (colon - 1)) in
      let key = String.sub record (colon + 1) klen in
      let rest_pos = colon + 1 + klen in
      (match op with
      | 'S' -> `Set (key, String.sub record rest_pos (String.length record - rest_pos))
      | 'R' -> `Remove key
      | _ -> fail ())

let ensure_live t = if t.crashed then invalid_arg "Store: node is crashed; recover first"

let sorted_pairs table =
  List.sort
    (fun (k1, _) (k2, _) -> String.compare k1 k2)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])

let checkpoint t =
  ensure_live t;
  (* Standard WAL discipline: fsync the log before the checkpoint covers
     it, so a record can never exist *only* inside a checkpoint frame. *)
  Wal.flush t.wal;
  let upto = Wal.next_lsn t.wal in
  let blob = Checkpoint.make ~upto (sorted_pairs t.table) in
  let retained = match t.checkpoints with [] -> [] | newest :: _ -> [ newest ] in
  t.checkpoints <- { upto; blob } :: retained;
  (* Truncate only what the *older* retained generation no longer needs: if
     the newest checkpoint rots at rest, its full suffix is still on the
     log behind the previous generation.  The first generation therefore
     truncates nothing — until two checkpoints exist, the log alone must be
     able to rebuild the store. *)
  (match retained with
  | [] -> ()
  | older :: _ -> Wal.truncate_prefix t.wal ~upto:older.upto);
  t.since_ckpt <- 0

let stall t =
  match t.disk with
  | None -> ()
  | Some d -> ( match Disk.draw_stall d with None -> () | Some ms -> t.on_stall ms)

let bump t =
  t.since_ckpt <- t.since_ckpt + 1;
  match t.checkpoint_every with
  | Some n when t.since_ckpt >= n -> checkpoint t
  | _ -> ()

let set t ~key value =
  ensure_live t;
  (* The stall precedes the append: a node killed mid-stall never wrote. *)
  stall t;
  ignore (Wal.append t.wal (encode_set ~key value));
  Hashtbl.replace t.table key value;
  bump t

let remove t ~key =
  ensure_live t;
  stall t;
  ignore (Wal.append t.wal (encode_remove ~key));
  Hashtbl.remove t.table key;
  bump t

let get t ~key =
  ensure_live t;
  Hashtbl.find_opt t.table key

let mem t ~key =
  ensure_live t;
  Hashtbl.mem t.table key

let size t =
  ensure_live t;
  Hashtbl.length t.table

let fold t ~init ~f =
  ensure_live t;
  Hashtbl.fold (fun key value acc -> f ~key value acc) t.table init

let to_alist t =
  ensure_live t;
  sorted_pairs t.table

let flush t = Wal.flush t.wal

let log_length t = Wal.length t.wal

let checkpoint_count t = List.length t.checkpoints

let rot_blob d blob =
  let b = Bytes.of_string blob in
  let pos = Disk.draw_byte d ~len:(Bytes.length b) in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  Bytes.to_string b

let crash t ?tear () =
  (match tear with
  | None -> ()
  | Some (rng, p) -> ignore (Wal.tear_tail t.wal rng ~p));
  (match t.disk with
  | None -> ()
  | Some d ->
      (* Un-flushed suffix: lost wholesale, or the in-flight record tears. *)
      if Wal.unflushed t.wal > 0 then begin
        if Disk.draw_drop d then t.pending_dropped <- t.pending_dropped + Wal.drop_unflushed t.wal
        else if Disk.draw_tear d then ignore (Wal.tear_unflushed t.wal)
      end;
      (* Bit rot over everything flushed: log records, then checkpoint
         frames, all equally likely victims. *)
      let nrec = Wal.flushed_count t.wal in
      let nckpt = List.length t.checkpoints in
      (match Disk.draw_rot d ~targets:(nrec + nckpt) with
      | None -> ()
      | Some (victim, sector) ->
          if victim < nrec then Wal.rot_record t.wal d ~index:victim ~sector
          else begin
            let c = List.nth t.checkpoints (victim - nrec) in
            c.blob <- rot_blob d c.blob
          end));
  t.table <- Hashtbl.create 64;
  t.crashed <- true

type recover_report = {
  replayed : int;
  salvaged : int;
  quarantined : int;
  checkpoint_fallbacks : int;
  dropped_unflushed : int;
}

let zero_report =
  { replayed = 0; salvaged = 0; quarantined = 0; checkpoint_fallbacks = 0; dropped_unflushed = 0 }

let recover_report t =
  if not t.crashed then zero_report
  else begin
    t.crashed <- false;
    (* Make quarantine physical first: salvage rot from mirrors, drop what
       is beyond repair, so replay below sees an intact log. *)
    let scrub = Wal.scrub t.wal in
    (* Whatever is still on the log survived the crash, so it is on disk by
       definition: a later crash must not treat it as an un-flushed tail. *)
    Wal.flush t.wal;
    let fallbacks = ref 0 in
    t.checkpoints <-
      List.filter
        (fun c ->
          match Checkpoint.restore c.blob with
          | Some _ -> true
          | None ->
              incr fallbacks;
              false)
        t.checkpoints;
    t.table <- Hashtbl.create 64;
    let start =
      match t.checkpoints with
      | [] -> Wal.first_lsn t.wal
      | c :: _ -> (
          match Checkpoint.restore c.blob with
          | Some (_, pairs) ->
              List.iter (fun (k, v) -> Hashtbl.replace t.table k v) pairs;
              c.upto
          | None -> assert false (* filtered above *))
    in
    let replayed = ref 0 in
    Wal.replay_from t.wal ~lsn:start (fun _lsn record ->
        incr replayed;
        match decode record with
        | `Set (key, value) -> Hashtbl.replace t.table key value
        | `Remove key -> Hashtbl.remove t.table key);
    let dropped = t.pending_dropped in
    t.pending_dropped <- 0;
    (* Damage consumed some redundancy: write a fresh generation now so
       the next crash faces two intact checkpoints again. *)
    if !fallbacks > 0 || scrub.salvaged > 0 || scrub.quarantined > 0 then checkpoint t;
    {
      replayed = !replayed;
      salvaged = scrub.salvaged;
      quarantined = scrub.quarantined;
      checkpoint_fallbacks = !fallbacks;
      dropped_unflushed = dropped;
    }
  end

let recover t = (recover_report t).replayed

let is_crashed t = t.crashed

let durability_check t =
  ensure_live t;
  let scratch = Hashtbl.create 64 in
  let start =
    (* Walk newest→oldest like recovery would; a live store normally has an
       intact newest generation, but stay total regardless. *)
    let rec pick = function
      | [] -> Wal.first_lsn t.wal
      | c :: rest -> (
          match Checkpoint.restore c.blob with
          | Some (_, pairs) ->
              List.iter (fun (k, v) -> Hashtbl.replace scratch k v) pairs;
              c.upto
          | None -> pick rest)
    in
    pick t.checkpoints
  in
  Wal.replay_from t.wal ~lsn:start (fun _lsn record ->
      match decode record with
      | `Set (key, value) -> Hashtbl.replace scratch key value
      | `Remove key -> Hashtbl.remove scratch key);
  if Hashtbl.length scratch <> Hashtbl.length t.table then
    Error
      (Printf.sprintf "durable state holds %d keys, volatile table %d" (Hashtbl.length scratch)
         (Hashtbl.length t.table))
  else
    List.fold_left
      (fun acc (key, value) ->
        match acc with
        | Error _ -> acc
        | Ok () -> (
            match Hashtbl.find_opt scratch key with
            | Some v when String.equal v value -> Ok ()
            | Some _ -> Error (Printf.sprintf "key %S differs between log and table" key)
            | None -> Error (Printf.sprintf "key %S is volatile-only (never logged?)" key)))
      (Ok ()) (sorted_pairs t.table)

let damage_newest_checkpoint t =
  match t.checkpoints with
  | [] -> false
  | c :: _ ->
      let b = Bytes.of_string c.blob in
      let pos = Bytes.length b / 2 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
      c.blob <- Bytes.to_string b;
      true
