(* Log records are "S<klen>:<key><value>" for set and "R<key>" for remove;
   the snapshot is a list of such set-records.  All framing is
   length-prefixed so keys and values may contain any byte. *)

type t = {
  mutable table : (string, string) Hashtbl.t;
  mutable snapshot : (string * string) list;
  wal : Wal.t;
  mutable crashed : bool;
}

let create () = { table = Hashtbl.create 64; snapshot = []; wal = Wal.create (); crashed = false }

let encode_set ~key value =
  Printf.sprintf "S%d:%s%s" (String.length key) key value

let encode_remove ~key = Printf.sprintf "R%d:%s" (String.length key) key

let decode record =
  let fail () = invalid_arg "Store: malformed log record" in
  if String.length record < 2 then fail ();
  let op = record.[0] in
  match String.index_opt record ':' with
  | None -> fail ()
  | Some colon ->
      let klen = int_of_string (String.sub record 1 (colon - 1)) in
      let key = String.sub record (colon + 1) klen in
      let rest_pos = colon + 1 + klen in
      (match op with
      | 'S' -> `Set (key, String.sub record rest_pos (String.length record - rest_pos))
      | 'R' -> `Remove key
      | _ -> fail ())

let ensure_live t = if t.crashed then invalid_arg "Store: node is crashed; recover first"

let set t ~key value =
  ensure_live t;
  ignore (Wal.append t.wal (encode_set ~key value));
  Hashtbl.replace t.table key value

let remove t ~key =
  ensure_live t;
  ignore (Wal.append t.wal (encode_remove ~key));
  Hashtbl.remove t.table key

let get t ~key =
  ensure_live t;
  Hashtbl.find_opt t.table key

let mem t ~key =
  ensure_live t;
  Hashtbl.mem t.table key

let size t =
  ensure_live t;
  Hashtbl.length t.table

let fold t ~init ~f =
  ensure_live t;
  Hashtbl.fold (fun key value acc -> f ~key value acc) t.table init

let sorted_pairs table =
  List.sort
    (fun (k1, _) (k2, _) -> String.compare k1 k2)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])

let to_alist t =
  ensure_live t;
  sorted_pairs t.table

let checkpoint t =
  ensure_live t;
  t.snapshot <- sorted_pairs t.table;
  Wal.truncate_prefix t.wal ~upto:(Wal.next_lsn t.wal)

let log_length t = Wal.length t.wal

let crash t ?tear () =
  (match tear with
  | None -> ()
  | Some (rng, p) -> ignore (Wal.tear_tail t.wal rng ~p));
  t.table <- Hashtbl.create 64;
  t.crashed <- true

let recover t =
  if not t.crashed then 0
  else begin
    t.crashed <- false;
    (* Drop the torn tail so future appends extend an intact log. *)
    ignore (Wal.repair t.wal);
    t.table <- Hashtbl.create 64;
    List.iter (fun (k, v) -> Hashtbl.replace t.table k v) t.snapshot;
    let replayed = ref 0 in
    Wal.replay t.wal (fun _lsn record ->
        incr replayed;
        match decode record with
        | `Set (key, value) -> Hashtbl.replace t.table key value
        | `Remove key -> Hashtbl.remove t.table key);
    !replayed
  end

let is_crashed t = t.crashed
