(** Deterministic disk-fault injector for simulated stable storage.

    The network has {!Dcp_net.Link}; this is the analogous adversary for the
    stable layer.  A {!spec} is pure data describing the fault mix — it can
    be built anywhere (profiles name one per fault-matrix axis) — while a
    handle ({!t}) couples a spec to an RNG stream and may only be
    constructed inside [lib/stable] (lint-enforced, like the [Exec]-only
    domain-primitives rule): guardian code can ask for a faulty disk but can
    never inject faults itself.

    Fault model, mirroring what real storage does to a write-ahead log:
    - {b stall}: an append blocks for a bounded number of simulated ms
      (a slow sector / queue hiccup);
    - {b tear}: the record being written when the node dies is left with a
      bad CRC (partial sector write);
    - {b drop}: the un-flushed suffix of the log never reached the platter
      and is lost wholesale on a crash;
    - {b rot}: one byte of previously-flushed state (a log record or a
      checkpoint frame) is corrupted at rest.  Flushed log records carry a
      redundant mirror copy (as a paired journal would), so a single rot is
      salvageable; with probability [sector_p] the rot takes the mirror too
      and the record must be quarantined.

    Tears and drops only ever touch records that were never flushed, and
    the runtime flushes a guardian's store before any message leaves the
    node, so externally-observed state is immune to both — exactly the
    write-ahead discipline that makes a real log crash-safe. *)

type spec = {
  stall_p : float;  (** per-append probability the write stalls *)
  stall_ms : int;  (** max stall, simulated ms; duration uniform in [1, stall_ms] *)
  tear_p : float;  (** on crash: the last un-flushed record is torn *)
  drop_p : float;  (** on crash: the whole un-flushed suffix is lost *)
  rot_p : float;  (** on crash: one byte of flushed state rots *)
  sector_p : float;  (** given rot on a log record: the mirror rots too *)
}

val none : spec
(** All probabilities zero: a perfect disk. *)

val flaky : spec
(** The [+disk] fault-matrix preset: stalls, tears, drops and salvageable
    rot, but no mirror loss ([sector_p = 0.]) — every fault is recoverable
    without data loss, so model oracles must keep holding. *)

val hostile : spec
(** [flaky] plus certain mirror loss ([sector_p = 1.]): rot destroys both
    copies and recovery must quarantine.  For targeted regression seeds,
    not sweeps. *)

val is_none : spec -> bool

val pp : Format.formatter -> spec -> unit
(** One-line rendering for profile listings, e.g.
    [stall=0.05/5ms tear=0.50 drop=0.25 rot=0.30 sector=0.00]. *)

type t
(** A spec bound to its own RNG stream.  Only [lib/stable] may call
    {!create} (lint rule [disk-faults]); everyone else passes the spec to
    {!Store.create} and lets the store build its injector. *)

val create : spec -> Dcp_rng.Rng.t -> t
val spec : t -> spec

(** {1 Draws} — each consumes from the handle's private stream only, so
    attaching a disk never perturbs the world's other RNG streams. *)

val draw_stall : t -> int option
(** [Some ms] when this append stalls. *)

val draw_drop : t -> bool
val draw_tear : t -> bool

val draw_rot : t -> targets:int -> (int * bool) option
(** [draw_rot t ~targets] decides crash-time bit rot over [targets]
    equally-likely victims (flushed records and checkpoint frames):
    [Some (victim, sector)] where [sector] says the mirror rots too.
    [None] when no rot, or nothing flushed to rot. *)

val draw_byte : t -> len:int -> int
(** Victim byte offset within a [len]-byte payload.  Requires [len > 0]. *)
