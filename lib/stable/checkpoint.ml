module Crc32 = Dcp_net.Crc32

(* Frame: body ^ 8 lowercase-hex chars of CRC32(body).
   Body:  "C<upto>;<n>;" then n pairs, each "<klen>:<key><vlen>:<value>".
   All lengths are decimal, every field length-prefixed, so keys and values
   may contain any byte.  Parsing is total: every malformed shape answers
   [None]. *)

let make ~upto pairs =
  let buf = Buffer.create 256 in
  Buffer.add_char buf 'C';
  Buffer.add_string buf (string_of_int upto);
  Buffer.add_char buf ';';
  Buffer.add_string buf (string_of_int (List.length pairs));
  Buffer.add_char buf ';';
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (string_of_int (String.length k));
      Buffer.add_char buf ':';
      Buffer.add_string buf k;
      Buffer.add_string buf (string_of_int (String.length v));
      Buffer.add_char buf ':';
      Buffer.add_string buf v)
    pairs;
  let body = Buffer.contents buf in
  Printf.sprintf "%s%08lx" body (Crc32.digest_string body)

let framed blob =
  let n = String.length blob in
  if n < 9 then None
  else
    let body = String.sub blob 0 (n - 8) in
    match Int32.of_string_opt ("0x" ^ String.sub blob (n - 8) 8) with
    | None -> None
    | Some crc -> if Int32.equal crc (Crc32.digest_string body) then Some body else None

(* Read a decimal integer starting at [!pos], consuming the trailing
   [stop] char.  Digits only — no sign, no 0x — so lengths can't go
   negative or overflow silently on realistic inputs. *)
let read_int body pos ~stop =
  let n = String.length body in
  let start = !pos in
  while !pos < n && body.[!pos] >= '0' && body.[!pos] <= '9' do
    incr pos
  done;
  if !pos = start || !pos >= n || body.[!pos] <> stop then None
  else
    match int_of_string_opt (String.sub body start (!pos - start)) with
    | Some v ->
        incr pos;
        Some v
    | None -> None

let read_field body pos =
  match read_int body pos ~stop:':' with
  | None -> None
  | Some len ->
      if len < 0 || !pos + len > String.length body then None
      else begin
        let field = String.sub body !pos len in
        pos := !pos + len;
        Some field
      end

let restore blob =
  match framed blob with
  | None -> None
  | Some body ->
      if String.length body = 0 || body.[0] <> 'C' then None
      else begin
        let pos = ref 1 in
        match read_int body pos ~stop:';' with
        | None -> None
        | Some upto -> (
            match read_int body pos ~stop:';' with
            | None -> None
            | Some count ->
                let rec pairs k acc =
                  if k = 0 then
                    if !pos = String.length body then Some (upto, List.rev acc) else None
                  else
                    match read_field body pos with
                    | None -> None
                    | Some key -> (
                        match read_field body pos with
                        | None -> None
                        | Some value -> pairs (k - 1) ((key, value) :: acc))
                in
                if count < 0 then None else pairs count [])
      end

let upto blob =
  match framed blob with
  | None -> None
  | Some body ->
      if String.length body = 0 || body.[0] <> 'C' then None
      else
        let pos = ref 1 in
        read_int body pos ~stop:';'
