(** Recoverable key-value store: a WAL plus periodic checkpoints.

    The building block guardians use for per-resource permanence of effect
    (§2.2).  Mutations are logged before being applied to the in-memory
    table; {!checkpoint} snapshots the table and truncates the log; after a
    crash, {!recover} rebuilds the table from the last checkpoint plus the
    log tail.  Keys and values are strings — higher layers store encoded
    {!Dcp_wire.Value} externals. *)

type t

val create : unit -> t

val set : t -> key:string -> string -> unit
val remove : t -> key:string -> unit
val get : t -> key:string -> string option
val mem : t -> key:string -> bool
val size : t -> int
val fold : t -> init:'a -> f:(key:string -> string -> 'a -> 'a) -> 'a

val to_alist : t -> (string * string) list
(** All live pairs sorted by key — the deterministic way to enumerate a
    store when the result feeds wire encoding, traces, or oracle verdicts. *)

val checkpoint : t -> unit
(** Snapshot the current table to stable storage and truncate the log. *)

val log_length : t -> int
(** Mutations logged since the last checkpoint. *)

val crash : t -> ?tear:(Dcp_rng.Rng.t * float) -> unit -> unit
(** Simulate the node crash: the volatile table is lost; the snapshot and
    log survive (with an optional torn tail, see {!Wal.tear_tail}).  The
    store is unusable until {!recover}. *)

val recover : t -> int
(** Rebuild the volatile table; returns how many log records were replayed.
    Recovering a store that was never crashed is a no-op returning 0. *)

val is_crashed : t -> bool
