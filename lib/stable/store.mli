(** Recoverable key-value store: a WAL plus CRC-framed checkpoints.

    The building block guardians use for per-resource permanence of effect
    (§2.2).  Mutations are logged before being applied to the in-memory
    table; {!checkpoint} frames the table as a durable {!Checkpoint} blob
    and compacts the log; after a crash, {!recover} rebuilds the table from
    the newest intact checkpoint plus the log suffix — O(suffix), not
    O(log).  Two checkpoint generations are retained and the log is only
    truncated up to the {e older} one, so a checkpoint that rots at rest
    still has the full suffix it needs behind the previous generation.

    A store may carry a {!Disk} fault injector ([?disk] at {!create}):
    appends then stall for bounded simulated time, a crash can tear or drop
    un-flushed records, and flushed state can rot.  Recovery never raises
    on damage — rotted records are salvaged from their flush mirrors or
    quarantined (skipped and counted), and corrupt checkpoints fall back a
    generation.  Keys and values are strings — higher layers store encoded
    {!Dcp_wire.Value} externals. *)

type t

val create : ?disk:Disk.spec * Dcp_rng.Rng.t -> ?checkpoint_every:int -> unit -> t
(** [?disk] attaches a fault injector built over its own RNG stream (give
    it a {!Dcp_rng.Rng.split} of the owner's stream).  [?checkpoint_every]
    auto-checkpoints after that many mutations, keeping recovery O(suffix)
    without the owner ever calling {!checkpoint}. *)

val set_stall_handler : t -> (int -> unit) -> unit
(** How a disk stall of [n] simulated ms is served — the runtime installs
    the owning guardian's sleep here.  Default: ignore (tests, bare
    stores). *)

val set : t -> key:string -> string -> unit
val remove : t -> key:string -> unit
val get : t -> key:string -> string option
val mem : t -> key:string -> bool
val size : t -> int
val fold : t -> init:'a -> f:(key:string -> string -> 'a -> 'a) -> 'a

val to_alist : t -> (string * string) list
(** All live pairs sorted by key — the deterministic way to enumerate a
    store when the result feeds wire encoding, traces, or oracle verdicts. *)

val checkpoint : t -> unit
(** Frame the current table as a durable checkpoint and truncate every log
    record the retained generations no longer need. *)

val flush : t -> unit
(** Flush the log ({!Wal.flush}): everything appended so far survives any
    crash.  The runtime calls this before a guardian's message leaves the
    node, so acknowledged state is never torn or dropped. *)

val log_length : t -> int
(** Intact log records currently retained. *)

val checkpoint_count : t -> int
(** Retained checkpoint generations (0, 1 or 2). *)

val crash : t -> ?tear:(Dcp_rng.Rng.t * float) -> unit -> unit
(** Simulate the node crash: the volatile table is lost; checkpoints and
    log survive, modulo damage — the legacy [?tear] draw (see
    {!Wal.tear_tail}) plus, when a disk injector is attached, its
    crash-time tear/drop/rot faults.  The store is unusable until
    {!recover}. *)

type recover_report = {
  replayed : int;  (** log records applied on top of the checkpoint *)
  salvaged : int;  (** rotted records restored from their mirrors *)
  quarantined : int;  (** records lost to damage and skipped *)
  checkpoint_fallbacks : int;  (** corrupt checkpoint generations passed over *)
  dropped_unflushed : int;  (** un-flushed records the crash destroyed *)
}

val recover_report : t -> recover_report
(** Rebuild the volatile table from the newest intact checkpoint plus the
    intact log suffix.  Damage is quarantined, never raised on; if any was
    found, a fresh checkpoint is written immediately so redundancy is
    restored.  Recovering a live store is a no-op with an all-zero
    report. *)

val recover : t -> int
(** [recover t] is [(recover_report t).replayed] — the pre-disk-era API. *)

val is_crashed : t -> bool

val durability_check : t -> (unit, string) result
(** Oracle hook: rebuild the state a recovery would produce right now
    (newest intact checkpoint + intact log suffix) and compare it to the
    live table.  [Error] pinpoints the first divergent key — if this ever
    fires, write-ahead discipline was broken somewhere. *)

val damage_newest_checkpoint : t -> bool
(** Test hook: flip one byte inside the newest checkpoint frame (a tear
    landing mid-checkpoint).  Returns [false] when no checkpoint exists. *)
