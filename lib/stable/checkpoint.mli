(** CRC-framed checkpoint records for {!Store} log compaction.

    A checkpoint freezes a store's whole key-value table as one durable
    blob tagged with the log position it covers: replaying the blob and the
    log suffix from [upto] onward reconstructs exactly the state that
    replaying the full log would.  The frame is a CRC32 over the entire
    body, so a checkpoint that rotted at rest is detected as a unit and
    {!restore} answers [None] — recovery then falls back to the previous
    generation (the store retains two) rather than trusting damaged state
    or raising. *)

val make : upto:int -> (string * string) list -> string
(** [make ~upto pairs] frames [pairs] (any bytes allowed in keys and
    values) covering log records with LSN < [upto]. *)

val restore : string -> (int * (string * string) list) option
(** Decode a frame.  [None] on any damage: CRC mismatch, truncation, or
    malformed framing.  Never raises. *)

val upto : string -> int option
(** The covered LSN of an intact frame, without decoding the pairs. *)
